package core

import (
	"testing"

	"repro/internal/station"
)

// TestRefreshJitterSpread pins the jitter mechanics: per-station
// refresh intervals spread deterministically across
// [interval, interval·(1+jitter)], and the knob is inert without
// hardening or with jitter zero.
func TestRefreshJitterSpread(t *testing.T) {
	base, err := NewNetwork(NetworkConfig{HIDE: true, Harden: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := base.StationConfigAt(1, station.HIDE, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ref.PortRefresh <= 0 {
		t.Fatal("hardened config has no port refresh")
	}

	jn, err := NewNetwork(NetworkConfig{HIDE: true, Harden: true, RefreshJitter: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	jn2, err := NewNetwork(NetworkConfig{HIDE: true, Harden: true, RefreshJitter: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	distinct := false
	var prev int64
	for i := 1; i <= 32; i++ {
		c, err := jn.StationConfigAt(i, station.HIDE, 1)
		if err != nil {
			t.Fatal(err)
		}
		if c.PortRefresh < ref.PortRefresh || c.PortRefresh > 2*ref.PortRefresh {
			t.Fatalf("station %d refresh %v outside [%v, %v]", i, c.PortRefresh, ref.PortRefresh, 2*ref.PortRefresh)
		}
		c2, err := jn2.StationConfigAt(i, station.HIDE, 1)
		if err != nil {
			t.Fatal(err)
		}
		if c.PortRefresh != c2.PortRefresh {
			t.Fatalf("station %d jitter not deterministic: %v vs %v", i, c.PortRefresh, c2.PortRefresh)
		}
		if i > 1 && int64(c.PortRefresh) != prev {
			distinct = true
		}
		prev = int64(c.PortRefresh)
	}
	if !distinct {
		t.Fatal("jitter produced identical refresh intervals for every station")
	}

	// Without hardening the knob must be inert.
	plain, err := NewNetwork(NetworkConfig{HIDE: true, RefreshJitter: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := plain.StationConfigAt(1, station.HIDE, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pc.PortRefresh != 0 {
		t.Fatalf("unhardened config got refresh %v, want 0", pc.PortRefresh)
	}
}
