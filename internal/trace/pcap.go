package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/dot11"
)

// This file imports and exports traces in classic libpcap format so
// the evaluation pipeline can run on real captures (e.g. from tcpdump
// or tshark). Three link types are supported:
//
//   - Ethernet (DLT 1): broadcast/multicast UDP datagrams, as captured
//     on the AP's wired side. Rates are not available and default to
//     1 Mb/s (the basic rate broadcast goes out at).
//   - IEEE 802.11 (DLT 105): raw frames as produced by this package's
//     own dot11 encoder or a monitor-mode capture without radiotap.
//   - Radiotap (DLT 127): monitor-mode captures; the radiotap header's
//     Rate field supplies the per-frame PHY rate when present.
//
// Only UDP-padded group-addressed data frames become trace entries;
// everything else (beacons, ACKs, unicast, non-UDP) is skipped, which
// is exactly the filtering the paper applies to its captures.

// pcap file format constants.
const (
	pcapMagicMicros = 0xa1b2c3d4
	pcapMagicNanos  = 0xa1b23c4d

	// DLTEthernet, DLT80211 and DLTRadiotap are the supported link
	// types.
	DLTEthernet uint32 = 1
	DLT80211    uint32 = 105
	DLTRadiotap uint32 = 127
)

// pcapGlobalHeaderLen and pcapRecordHeaderLen are fixed sizes.
const (
	pcapGlobalHeaderLen = 24
	pcapRecordHeaderLen = 16
)

// PCAPOptions tunes the importer.
type PCAPOptions struct {
	// Name labels the resulting trace.
	Name string
	// DefaultRate is used when the capture carries no rate information
	// (Ethernet captures, radiotap without a Rate field). Zero means
	// 1 Mb/s.
	DefaultRate dot11.Rate
}

// ReadPCAP parses a classic pcap capture into a Trace.
func ReadPCAP(r io.Reader, opts PCAPOptions) (*Trace, error) {
	if opts.DefaultRate <= 0 {
		opts.DefaultRate = dot11.Rate1Mbps
	}
	var gh [pcapGlobalHeaderLen]byte
	if _, err := io.ReadFull(r, gh[:]); err != nil {
		return nil, fmt.Errorf("trace: reading pcap global header: %w", err)
	}
	var order binary.ByteOrder
	var nanos bool
	switch magic := binary.LittleEndian.Uint32(gh[:4]); magic {
	case pcapMagicMicros:
		order = binary.LittleEndian
	case pcapMagicNanos:
		order, nanos = binary.LittleEndian, true
	default:
		switch magic := binary.BigEndian.Uint32(gh[:4]); magic {
		case pcapMagicMicros:
			order = binary.BigEndian
		case pcapMagicNanos:
			order, nanos = binary.BigEndian, true
		default:
			return nil, fmt.Errorf("trace: not a pcap file (magic %#08x)", magic)
		}
	}
	linkType := order.Uint32(gh[20:24])
	switch linkType {
	case DLTEthernet, DLT80211, DLTRadiotap:
	default:
		return nil, fmt.Errorf("trace: unsupported pcap link type %d", linkType)
	}

	tr := &Trace{Name: opts.Name}
	var first time.Duration
	haveFirst := false
	var rec [pcapRecordHeaderLen]byte
	for {
		if _, err := io.ReadFull(r, rec[:]); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: reading pcap record header: %w", err)
		}
		sec := order.Uint32(rec[0:4])
		sub := order.Uint32(rec[4:8])
		capLen := order.Uint32(rec[8:12])
		origLen := order.Uint32(rec[12:16])
		if capLen > 1<<20 {
			return nil, fmt.Errorf("trace: implausible pcap capture length %d", capLen)
		}
		pkt := make([]byte, capLen)
		if _, err := io.ReadFull(r, pkt); err != nil {
			return nil, fmt.Errorf("trace: reading pcap packet body: %w", err)
		}
		ts := time.Duration(sec) * time.Second
		if nanos {
			ts += time.Duration(sub) * time.Nanosecond
		} else {
			ts += time.Duration(sub) * time.Microsecond
		}
		if !haveFirst {
			haveFirst = true
			// Real captures carry epoch timestamps; rebase those to the
			// first packet. Captures that already use small relative
			// offsets (e.g. WritePCAP exports) keep them, so a write/
			// read cycle is lossless.
			if ts > 24*time.Hour {
				first = ts
			}
		}
		f, ok := decodePacket(linkType, pkt, int(origLen), opts.DefaultRate)
		if !ok {
			continue
		}
		f.At = ts - first
		tr.Frames = append(tr.Frames, f)
	}
	tr.Sort()
	if n := len(tr.Frames); n > 0 {
		tr.Duration = tr.Frames[n-1].At + time.Second
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// decodePacket extracts a broadcast UDP frame from one captured packet.
func decodePacket(linkType uint32, pkt []byte, origLen int, defRate dot11.Rate) (Frame, bool) {
	switch linkType {
	case DLTEthernet:
		return decodeEthernet(pkt, origLen, defRate)
	case DLT80211:
		return decode80211(pkt, origLen, defRate)
	case DLTRadiotap:
		hdrLen, rate, ok := parseRadiotap(pkt)
		if !ok {
			return Frame{}, false
		}
		if rate <= 0 {
			rate = defRate
		}
		return decode80211(pkt[hdrLen:], origLen-hdrLen, rate)
	}
	return Frame{}, false
}

// decodeEthernet extracts broadcast/multicast UDP over IPv4.
func decodeEthernet(pkt []byte, origLen int, rate dot11.Rate) (Frame, bool) {
	const ethHdrLen = 14
	if len(pkt) < ethHdrLen {
		return Frame{}, false
	}
	var dst dot11.MACAddr
	copy(dst[:], pkt[0:6])
	if !dst.IsMulticast() {
		return Frame{}, false
	}
	if et := uint16(pkt[12])<<8 | uint16(pkt[13]); et != 0x0800 {
		return Frame{}, false
	}
	port, ok := ipv4UDPDstPort(pkt[ethHdrLen:])
	if !ok {
		return Frame{}, false
	}
	// Express the length as the equivalent 802.11 frame: swap the
	// Ethernet header for MAC header + LLC/SNAP.
	length := origLen - ethHdrLen + dot11.MACHeaderLen + dot11.LLCSNAPLen
	return Frame{Length: length, Rate: rate, DstPort: port}, true
}

// decode80211 extracts group-addressed UDP data frames.
func decode80211(pkt []byte, origLen int, rate dot11.Rate) (Frame, bool) {
	if dot11.Classify(pkt) != dot11.KindData {
		return Frame{}, false
	}
	df, err := dot11.UnmarshalDataFrame(pkt)
	if err != nil || !df.Header.Addr1.IsMulticast() {
		return Frame{}, false
	}
	port, err := dot11.DstUDPPort(df.Payload)
	if err != nil {
		return Frame{}, false
	}
	if origLen < len(pkt) {
		origLen = len(pkt)
	}
	return Frame{
		Length: origLen, Rate: rate, DstPort: port,
		MoreData: df.Header.FC.MoreData,
	}, true
}

// ipv4UDPDstPort pulls the UDP destination port out of an IPv4 packet.
func ipv4UDPDstPort(ip []byte) (uint16, bool) {
	if len(ip) < 20 || ip[0]>>4 != 4 {
		return 0, false
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < 20 || len(ip) < ihl+4 || ip[9] != 17 {
		return 0, false
	}
	return uint16(ip[ihl+2])<<8 | uint16(ip[ihl+3]), true
}

// radiotap field sizes and alignments for present bits 0..13, enough
// to locate the Rate field (bit 2). See radiotap.org.
var radiotapFields = []struct{ size, align int }{
	{8, 8}, // 0 TSFT
	{1, 1}, // 1 Flags
	{1, 1}, // 2 Rate
	{4, 2}, // 3 Channel (freq + flags)
	{2, 2}, // 4 FHSS
	{1, 1}, // 5 dBm antenna signal
	{1, 1}, // 6 dBm antenna noise
	{2, 2}, // 7 lock quality
	{2, 2}, // 8 TX attenuation
	{2, 2}, // 9 dB TX attenuation
	{1, 1}, // 10 dBm TX power
	{1, 1}, // 11 antenna
	{1, 1}, // 12 dB antenna signal
	{1, 1}, // 13 dB antenna noise
}

// parseRadiotap returns the radiotap header length and the PHY rate
// (0 when absent). It handles chained present words.
func parseRadiotap(pkt []byte) (hdrLen int, rate dot11.Rate, ok bool) {
	if len(pkt) < 8 || pkt[0] != 0 {
		return 0, 0, false
	}
	hdrLen = int(binary.LittleEndian.Uint16(pkt[2:4]))
	if hdrLen < 8 || hdrLen > len(pkt) {
		return 0, 0, false
	}
	// Collect present words (bit 31 chains to another word).
	present := []uint32{binary.LittleEndian.Uint32(pkt[4:8])}
	off := 8
	for present[len(present)-1]&(1<<31) != 0 {
		if off+4 > hdrLen {
			return 0, 0, false
		}
		present = append(present, binary.LittleEndian.Uint32(pkt[off:off+4]))
		off += 4
	}
	// Walk the first present word's fields up to the Rate bit. Fields
	// beyond our table stop the walk (we only need Rate, bit 2).
	p := present[0]
	for bit := 0; bit < len(radiotapFields); bit++ {
		if p&(1<<uint(bit)) == 0 {
			continue
		}
		f := radiotapFields[bit]
		if rem := off % f.align; rem != 0 {
			off += f.align - rem
		}
		if off+f.size > hdrLen {
			return 0, 0, false
		}
		if bit == 2 {
			// Rate in units of 500 kb/s.
			return hdrLen, dot11.Rate(float64(pkt[off]) * 500e3), true
		}
		off += f.size
	}
	return hdrLen, 0, true
}

// PCAPRecord is one raw captured frame for WritePCAPRecords.
type PCAPRecord struct {
	At  time.Duration
	Raw []byte
}

// WritePCAPRecords writes raw 802.11 frames (e.g. from the medium's
// monitor tap) as a DLT 105 pcap capture, preserving their bytes
// exactly. ReadPCAP turns such a capture back into a broadcast trace.
func WritePCAPRecords(w io.Writer, recs []PCAPRecord) error {
	var gh [pcapGlobalHeaderLen]byte
	binary.LittleEndian.PutUint32(gh[0:4], pcapMagicMicros)
	binary.LittleEndian.PutUint16(gh[4:6], 2)
	binary.LittleEndian.PutUint16(gh[6:8], 4)
	binary.LittleEndian.PutUint32(gh[16:20], 65535)
	binary.LittleEndian.PutUint32(gh[20:24], DLT80211)
	if _, err := w.Write(gh[:]); err != nil {
		return err
	}
	var rec [pcapRecordHeaderLen]byte
	for _, r := range recs {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(r.At/time.Second))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(r.At%time.Second/time.Microsecond))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(r.Raw)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(r.Raw)))
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
		if _, err := w.Write(r.Raw); err != nil {
			return err
		}
	}
	return nil
}

// WritePCAP exports the trace as an 802.11 (DLT 105) pcap capture:
// each trace frame becomes a group-addressed UDP data frame encoded by
// the dot11 package, so external tools (wireshark, tshark) can inspect
// generated traces and ReadPCAP round-trips them.
func WritePCAP(w io.Writer, tr *Trace) error {
	var gh [pcapGlobalHeaderLen]byte
	binary.LittleEndian.PutUint32(gh[0:4], pcapMagicMicros)
	binary.LittleEndian.PutUint16(gh[4:6], 2) // version major
	binary.LittleEndian.PutUint16(gh[6:8], 4) // version minor
	binary.LittleEndian.PutUint32(gh[16:20], 65535)
	binary.LittleEndian.PutUint32(gh[20:24], DLT80211)
	if _, err := w.Write(gh[:]); err != nil {
		return err
	}
	src := dot11.MACAddr{0x02, 0x1d, 0xe0, 0xff, 0xff, 0xfe}
	var rec [pcapRecordHeaderLen]byte
	for i, f := range tr.Frames {
		payloadLen := f.Length - dot11.MACHeaderLen - dot11.UDPEncapsLen
		if payloadLen < 0 {
			payloadLen = 0
		}
		df := &dot11.DataFrame{
			Header: dot11.MACHeader{
				FC:    dot11.FrameControl{FromDS: true, MoreData: f.MoreData},
				Addr1: dot11.Broadcast, Addr2: src, Addr3: src,
				Seq: uint16(i&0x0fff) << 4,
			},
			Payload: dot11.EncapsulateUDP(dot11.UDPDatagram{
				DstIP: [4]byte{255, 255, 255, 255}, DstPort: f.DstPort,
				Payload: make([]byte, payloadLen),
			}),
		}
		raw := df.Marshal()
		binary.LittleEndian.PutUint32(rec[0:4], uint32(f.At/time.Second))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(f.At%time.Second/time.Microsecond))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(raw)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(raw)))
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
		if _, err := w.Write(raw); err != nil {
			return err
		}
	}
	return nil
}
