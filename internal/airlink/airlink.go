// Package airlink carries 802.11 frames over real UDP sockets — the
// "virtual air" between the hided AP daemon and hidec client daemons
// running as separate processes. It implements the same medium.Channel
// surface as the in-process emulated medium, so the exact same AP and
// station code runs over loopback or a LAN, in wall-clock time, with
// the engine driven by sim.RunRealtime.
//
// Framing reuses the netmedium wire protocol: each UDP datagram is one
// MsgFrame message carrying the raw 802.11 frame and its nominal PHY
// rate. The hub (AP side) learns peer addresses from the source MAC of
// frames it receives and routes unicast frames accordingly; group
// frames fan out to every known peer.
package airlink

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/dot11"
	"repro/internal/medium"
	"repro/internal/netmedium"
	"repro/internal/sim"
)

// maxDatagram bounds reads.
const maxDatagram = 8192

// srcMAC extracts the transmitter address of a raw frame (Addr2/TA at
// offset 10 for everything this protocol sends except ACKs).
func srcMAC(raw []byte) (dot11.MACAddr, bool) {
	var src dot11.MACAddr
	if len(raw) < 16 || dot11.Classify(raw) == dot11.KindACK {
		return src, false
	}
	copy(src[:], raw[10:16])
	return src, true
}

// dstMAC extracts the receiver address (offset 4 for all frame types).
func dstMAC(raw []byte) (dot11.MACAddr, bool) {
	var dst dot11.MACAddr
	if len(raw) < 10 {
		return dst, false
	}
	copy(dst[:], raw[4:10])
	return dst, true
}

// Hub is the AP-side link: it owns the listening socket, learns peers,
// and fans group frames out to all of them.
type Hub struct {
	pc     net.PacketConn
	inject chan<- sim.Event

	mu    sync.Mutex
	node  medium.Node // the local AP
	peers map[dot11.MACAddr]net.Addr
	stats HubStats
}

// HubStats counts hub activity.
type HubStats struct {
	FramesIn   int
	FramesOut  int
	Peers      int
	BadPackets int
}

// NewHub wraps a listening socket. Received frames are delivered to
// the attached node via the inject channel (on the engine goroutine).
func NewHub(pc net.PacketConn, inject chan<- sim.Event) *Hub {
	return &Hub{pc: pc, inject: inject, peers: make(map[dot11.MACAddr]net.Addr)}
}

var _ medium.Channel = (*Hub)(nil)

// Addr returns the hub's listen address.
func (h *Hub) Addr() net.Addr { return h.pc.LocalAddr() }

// Stats returns a snapshot of the counters.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stats
	st.Peers = len(h.peers)
	return st
}

// Attach registers the local node (the AP). Only one node attaches to
// a hub; stations live in other processes.
func (h *Hub) Attach(addr dot11.MACAddr, n medium.Node) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.node = n
}

// Transmit sends a frame to its addressee(s) over UDP.
func (h *Hub) Transmit(src dot11.MACAddr, raw []byte, rate dot11.Rate) time.Duration {
	dst, ok := dstMAC(raw)
	if !ok {
		return 0
	}
	msg, err := netmedium.Message{Type: netmedium.MsgFrame, Rate: rate, Payload: raw}.Marshal()
	if err != nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if dst.IsMulticast() {
		for _, peer := range h.peers {
			if _, err := h.pc.WriteTo(msg, peer); err == nil {
				h.stats.FramesOut++
			}
		}
		return 0
	}
	if peer, ok := h.peers[dst]; ok {
		if _, err := h.pc.WriteTo(msg, peer); err == nil {
			h.stats.FramesOut++
		}
	}
	return 0
}

// Serve reads datagrams until the socket closes, delivering frames to
// the attached node through the inject channel. Returns net.ErrClosed
// after Close.
func (h *Hub) Serve() error {
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := h.pc.ReadFrom(buf)
		if err != nil {
			return err
		}
		m, err := netmedium.Unmarshal(buf[:n])
		if err != nil || m.Type != netmedium.MsgFrame {
			h.mu.Lock()
			h.stats.BadPackets++
			h.mu.Unlock()
			continue
		}
		raw := m.Payload
		h.mu.Lock()
		if src, ok := srcMAC(raw); ok {
			h.peers[src] = from
		}
		node := h.node
		h.stats.FramesIn++
		h.mu.Unlock()
		if node == nil {
			continue
		}
		rate := m.Rate
		h.inject <- func(now time.Duration) {
			node.Receive(raw, rate, now)
		}
	}
}

// Close shuts the hub's socket; Serve returns.
func (h *Hub) Close() error { return h.pc.Close() }

// Link is the client-side leg: a connected UDP socket to the hub.
type Link struct {
	conn   net.Conn
	inject chan<- sim.Event

	mu    sync.Mutex
	node  medium.Node
	stats LinkStats
}

// LinkStats counts link activity.
type LinkStats struct {
	FramesIn   int
	FramesOut  int
	BadPackets int
}

// Dial connects to a hub.
func Dial(addr string, inject chan<- sim.Event) (*Link, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("airlink: dialing hub: %w", err)
	}
	return &Link{conn: conn, inject: inject}, nil
}

var _ medium.Channel = (*Link)(nil)

// Attach registers the local node (the station).
func (l *Link) Attach(addr dot11.MACAddr, n medium.Node) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.node = n
}

// Transmit sends a frame to the hub.
func (l *Link) Transmit(src dot11.MACAddr, raw []byte, rate dot11.Rate) time.Duration {
	msg, err := netmedium.Message{Type: netmedium.MsgFrame, Rate: rate, Payload: raw}.Marshal()
	if err != nil {
		return 0
	}
	if _, err := l.conn.Write(msg); err == nil {
		l.mu.Lock()
		l.stats.FramesOut++
		l.mu.Unlock()
	}
	return 0
}

// Stats returns a snapshot of the counters.
func (l *Link) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Serve reads frames from the hub until the socket closes.
func (l *Link) Serve() error {
	buf := make([]byte, maxDatagram)
	for {
		n, err := l.conn.Read(buf)
		if err != nil {
			return err
		}
		m, err := netmedium.Unmarshal(buf[:n])
		if err != nil || m.Type != netmedium.MsgFrame {
			l.mu.Lock()
			l.stats.BadPackets++
			l.mu.Unlock()
			continue
		}
		l.mu.Lock()
		node := l.node
		l.stats.FramesIn++
		l.mu.Unlock()
		if node == nil {
			continue
		}
		raw := m.Payload
		rate := m.Rate
		l.inject <- func(now time.Duration) {
			node.Receive(raw, rate, now)
		}
	}
}

// Close shuts the link; Serve returns.
func (l *Link) Close() error { return l.conn.Close() }
