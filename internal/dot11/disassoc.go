package dot11

import "fmt"

// Disassociation management frame (subtype 1010): either side ends the
// association. The AP tears down the client's port-table entries so a
// departed HIDE client's stale ports stop influencing Algorithm 1.

// SubtypeDisassoc is the disassociation management subtype.
const SubtypeDisassoc uint8 = 0b1010

// Disassociation reason codes (802.11 table 8-36 subset).
const (
	ReasonUnspecified uint16 = 1
	ReasonInactivity  uint16 = 4
	ReasonStationLeft uint16 = 8
)

// Disassoc is a disassociation frame.
type Disassoc struct {
	Header MACHeader
	Reason uint16
}

// Marshal encodes the disassociation frame.
func (d *Disassoc) Marshal() []byte {
	hdr := d.Header
	hdr.FC.Type = TypeManagement
	hdr.FC.Subtype = SubtypeDisassoc
	out := make([]byte, MACHeaderLen+2)
	hdr.marshalInto(out)
	putUint16(out[MACHeaderLen:], d.Reason)
	return out
}

// UnmarshalDisassoc decodes a disassociation frame.
func UnmarshalDisassoc(raw []byte) (*Disassoc, error) {
	hdr, err := unmarshalMACHeader(raw)
	if err != nil {
		return nil, err
	}
	if hdr.FC.Type != TypeManagement || hdr.FC.Subtype != SubtypeDisassoc {
		return nil, fmt.Errorf("%w: %v/%d, want disassociation", ErrBadFrameType, hdr.FC.Type, hdr.FC.Subtype)
	}
	if len(raw) < MACHeaderLen+2 {
		return nil, fmt.Errorf("%w: %d bytes for disassociation", ErrShortFrame, len(raw))
	}
	return &Disassoc{Header: hdr, Reason: getUint16(raw[MACHeaderLen:])}, nil
}
