// Package fixture exercises the elemconst analyzer. The test harness
// analyzes it as repro/internal/station, outside internal/dot11 where
// the protocol numbers 200, 201, and 2007 may not appear as literals
// in protocol-typed positions.
package fixture

import (
	"time"

	"repro/internal/dot11"
)

// BadElementID hand-types the BTIM element ID.
func BadElementID() byte {
	return 201 // want `magic 802.11 protocol number 201`
}

// BadPortsID writes the vendor element ID into a byte slice.
func BadPortsID() []byte {
	return []byte{200, 0} // want `magic 802.11 protocol number 200`
}

// BadAID hand-types the association-ID bound.
func BadAID() dot11.AID {
	return 2007 // want `magic 802.11 protocol number 2007`
}

// GoodConstants reference internal/dot11 by name.
func GoodConstants() (byte, dot11.AID) {
	return dot11.ElementIDBTIM, dot11.MaxAID
}

// PlainNumbers shows the same digits are fine in non-protocol types:
// an int counter and a duration share the values without ambiguity.
func PlainNumbers() (int, time.Duration) {
	return 201, 200 * time.Millisecond
}
