package engine

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkMapOverhead measures the scheduler's per-cell cost with a
// near-empty cell body, bounding what the engine itself adds on top of
// real evaluation work (which runs milliseconds per cell).
func BenchmarkMapOverhead(b *testing.B) {
	const cells = 64
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				_, err := Map(ctx, workers, cells, func(ctx context.Context, j int) (int, error) {
					return j * j, nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
