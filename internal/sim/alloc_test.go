package sim

import (
	"testing"
	"time"
)

// These tests pin the engine's allocation budget: the pooled scheduler
// exists so the per-event cost every simulated frame, beacon, and
// wakelock rearm pays is zero heap objects in steady state. A regression
// here (a new closure capture, a lost free-list recycle) fails loudly
// instead of silently re-inflating the hot path.

// TestAllocBudgetScheduleStep asserts the core schedule→dispatch cycle
// allocates nothing once the item pool is warm.
func TestAllocBudgetScheduleStep(t *testing.T) {
	eng := New()
	fn := func(time.Duration) {}
	// Warm the free list and the queue's backing array.
	for i := 0; i < 64; i++ {
		eng.MustScheduleAfter(time.Duration(i)*time.Microsecond, fn)
	}
	for eng.Step() {
	}
	allocs := testing.AllocsPerRun(200, func() {
		eng.MustScheduleAfter(time.Microsecond, fn)
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+step: %.1f allocs/op, want 0", allocs)
	}
}

// TestAllocBudgetScheduleCancel asserts the rearm pattern the stations
// use on every arrival — cancel the pending event, schedule a fresh one
// — stays allocation-free: cancelled items are recycled when the queue
// drains past them.
func TestAllocBudgetScheduleCancel(t *testing.T) {
	eng := New()
	fn := func(time.Duration) {}
	for i := 0; i < 64; i++ {
		eng.MustScheduleAfter(time.Duration(i)*time.Microsecond, fn)
	}
	for eng.Step() {
	}
	allocs := testing.AllocsPerRun(200, func() {
		h := eng.MustScheduleAfter(time.Millisecond, fn)
		h.Cancel()
		eng.MustScheduleAfter(time.Microsecond, fn)
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel+step: %.1f allocs/op, want 0", allocs)
	}
}

// TestAllocBudgetScheduleArg asserts the arg-carrying schedule path —
// one bound function, per-event state passed as a pointer — does not box
// or capture: pointer-shaped args ride in the interface word for free.
func TestAllocBudgetScheduleArg(t *testing.T) {
	eng := New()
	var sink int
	fn := func(now time.Duration, arg any) { sink += *arg.(*int) }
	payload := 7
	for i := 0; i < 64; i++ {
		eng.MustScheduleArgAt(eng.Now()+time.Microsecond, fn, &payload)
	}
	for eng.Step() {
	}
	allocs := testing.AllocsPerRun(200, func() {
		eng.MustScheduleArgAt(eng.Now()+time.Microsecond, fn, &payload)
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule-arg+step: %.1f allocs/op, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("arg events never fired")
	}
}
