package check

import (
	"context"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/trace"
)

// TestESSEquivMatrix proves the K=1 ESS is byte-identical to the
// single-AP Network across the full acceptance grid: three policies ×
// three scenario traces.
func TestESSEquivMatrix(t *testing.T) {
	m := DefaultESSEquivMatrix()
	m.Config = ESSEquivConfig{Duration: 90 * time.Second, Seed: 17}
	res, err := m.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 9 {
		t.Fatalf("got %d cells, want 9", len(res.Results))
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Results {
		if c.Frames == 0 {
			t.Fatalf("%v: empty frame stream", c.Cell)
		}
	}
}

// TestESSEquivCellDetectsDivergence makes sure the comparison has
// teeth: mismatched policies on the two sides must be flagged.
func TestESSEquivCellDetectsDivergence(t *testing.T) {
	tr, err := oracleTrace(trace.Starbucks, 21, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	open := sortedPorts(trace.OpenPortsForFraction(tr, 0.10))
	net, err := runNetworkSide(tr, policy.ReceiveAll, open, 21, 2)
	if err != nil {
		t.Fatal(err)
	}
	es, err := runESSSide(context.Background(), tr, policy.HIDE, open, 21, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffSides(es, net, 2, ESSEquivConfig{}.normalized().equiv(), tr.Duration); d == "" {
		t.Fatal("HIDE and ReceiveAll sides compared equal")
	}
}

// TestESSRoamFault drives the churn-under-DS-fault check end to end.
func TestESSRoamFault(t *testing.T) {
	res, err := RunESSRoamFaultContext(context.Background(), ESSRoamFaultConfig{Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("roam-fault check failed: %s\ncold: %+v\nlossy: %+v\nwarm: %+v",
			res.Mismatch, res.Cold, res.Lossy, res.Warm)
	}
	// The lossy DS must actually have been exercised.
	if res.Lossy.DSRecordsDropped == 0 {
		t.Fatal("no DS records dropped under DSLoss")
	}
}
