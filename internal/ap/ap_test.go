package ap

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/medium"
	"repro/internal/sim"
)

var (
	bssid  = dot11.MACAddr{2, 0, 0, 0, 0, 1}
	c1Addr = dot11.MACAddr{2, 0, 0, 0, 0, 0x10}
	c2Addr = dot11.MACAddr{2, 0, 0, 0, 0, 0x20}
)

// sniffer records everything delivered to one address.
type sniffer struct {
	beacons []*dot11.Beacon
	data    []*dot11.DataFrame
	acks    int
}

func (s *sniffer) Receive(raw []byte, rate dot11.Rate, at time.Duration) {
	switch dot11.Classify(raw) {
	case dot11.KindBeacon:
		if b, err := dot11.UnmarshalBeacon(raw); err == nil {
			s.beacons = append(s.beacons, b)
		}
	case dot11.KindData:
		if d, err := dot11.UnmarshalDataFrame(raw); err == nil {
			// Copy the payload; it aliases the delivery buffer.
			d.Payload = append([]byte(nil), d.Payload...)
			s.data = append(s.data, d)
		}
	case dot11.KindACK:
		s.acks++
	}
}

// rig builds an engine, medium, AP, and a sniffer attached at addr.
func rig(t *testing.T, cfg Config) (*sim.Engine, *medium.Medium, *AP, *sniffer) {
	t.Helper()
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 42)
	cfg.BSSID = bssid
	if cfg.SSID == "" {
		cfg.SSID = "test"
	}
	a := New(eng, med, cfg)
	sn := &sniffer{}
	med.Attach(c1Addr, sn)
	return eng, med, a, sn
}

func TestBeaconCadenceAndDTIM(t *testing.T) {
	eng, _, a, sn := rig(t, Config{DTIMPeriod: 3})
	a.Start()
	eng.RunUntil(time.Second)

	// 100 TU = 102.4 ms; in one second: beacons at 102.4..921.6 ms = 9.
	if len(sn.beacons) != 9 {
		t.Fatalf("heard %d beacons in 1 s, want 9", len(sn.beacons))
	}
	for i, b := range sn.beacons {
		if b.TIM == nil {
			t.Fatalf("beacon %d missing TIM", i)
		}
		wantCount := uint8((3 - i%3) % 3)
		if b.TIM.DTIMCount != wantCount {
			t.Errorf("beacon %d DTIM count = %d, want %d", i, b.TIM.DTIMCount, wantCount)
		}
		if b.TIM.DTIMPeriod != 3 {
			t.Errorf("beacon %d DTIM period = %d, want 3", i, b.TIM.DTIMPeriod)
		}
	}
	if a.Stats().DTIMsSent != 3 {
		t.Errorf("DTIMs sent = %d, want 3", a.Stats().DTIMsSent)
	}
}

func TestHIDEBeaconCarriesBTIM(t *testing.T) {
	eng, _, a, sn := rig(t, Config{HIDE: true})
	a.Start()
	eng.RunUntil(200 * time.Millisecond)
	if len(sn.beacons) == 0 {
		t.Fatal("no beacons heard")
	}
	if sn.beacons[0].BTIM == nil {
		t.Fatal("HIDE AP beacon missing BTIM element")
	}
	eng2, _, a2, sn2 := rig(t, Config{HIDE: false})
	a2.Start()
	eng2.RunUntil(200 * time.Millisecond)
	if sn2.beacons[0].BTIM != nil {
		t.Fatal("legacy AP beacon carries BTIM")
	}
}

func TestGroupBufferingUntilDTIM(t *testing.T) {
	eng, _, a, sn := rig(t, Config{DTIMPeriod: 3})
	a.Start()
	a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)
	a.EnqueueGroup(dot11.UDPDatagram{DstPort: 1900}, dot11.Rate1Mbps)

	eng.RunUntil(time.Second)
	if got := len(sn.data); got != 2 {
		t.Fatalf("received %d group frames, want 2", got)
	}
	// The first buffered frame must carry MoreData, the last must not.
	if !sn.data[0].Header.FC.MoreData {
		t.Error("first group frame missing MoreData")
	}
	if sn.data[1].Header.FC.MoreData {
		t.Error("last group frame has MoreData set")
	}
	for _, d := range sn.data {
		if !d.Header.Addr1.IsBroadcast() {
			t.Error("group frame not broadcast-addressed")
		}
	}
	if a.BufferedGroupFrames() != 0 {
		t.Error("group buffer not flushed")
	}
}

func TestAlgorithm1FlagsOnlyListeningClients(t *testing.T) {
	_, _, a, _ := rig(t, Config{HIDE: true, DTIMPeriod: 1})
	aid1, err := a.Associate(c1Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	aid2, err := a.Associate(c2Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	a.Table().Update(aid1, []uint16{5353})
	a.Table().Update(aid2, []uint16{1900})
	a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)

	flags := a.broadcastFlags()
	if !flags.Get(aid1) {
		t.Error("client with matching port not flagged")
	}
	if flags.Get(aid2) {
		t.Error("client without matching port flagged")
	}
}

func TestPortMessageUpdatesTableAndACKs(t *testing.T) {
	eng, med, a, sn := rig(t, Config{HIDE: true})
	aid, err := a.Associate(c1Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	msg := &dot11.UDPPortMessage{
		Header: dot11.MACHeader{Addr1: bssid, Addr2: c1Addr, Addr3: bssid},
		Ports:  []uint16{53, 5353},
	}
	raw, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	med.Transmit(c1Addr, raw, dot11.Rate1Mbps)
	eng.Run()

	if !a.Table().Listening(5353, aid) || !a.Table().Listening(53, aid) {
		t.Error("port table not updated from UDP Port Message")
	}
	if sn.acks != 1 {
		t.Errorf("client received %d ACKs, want 1", sn.acks)
	}
	if a.Stats().PortMsgsReceived != 1 || a.Stats().ACKsSent != 1 {
		t.Errorf("stats = %+v", a.Stats())
	}
}

func TestPortMessageFromUnassociatedIgnored(t *testing.T) {
	eng, med, a, sn := rig(t, Config{HIDE: true})
	msg := &dot11.UDPPortMessage{
		Header: dot11.MACHeader{Addr1: bssid, Addr2: c1Addr, Addr3: bssid},
		Ports:  []uint16{53},
	}
	raw, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	med.Transmit(c1Addr, raw, dot11.Rate1Mbps)
	eng.Run()
	if sn.acks != 0 {
		t.Error("AP ACKed an unassociated client")
	}
	if a.Table().Len() != 0 {
		t.Error("table updated for unassociated client")
	}
}

func TestUnicastBufferingAndPSPoll(t *testing.T) {
	eng, med, a, sn := rig(t, Config{})
	aid, err := a.Associate(c1Addr, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.EnqueueUnicast(c1Addr, dot11.UDPDatagram{DstPort: 443}, dot11.Rate11Mbps); err != nil {
		t.Fatal(err)
	}
	if err := a.EnqueueUnicast(c1Addr, dot11.UDPDatagram{DstPort: 444}, dot11.Rate11Mbps); err != nil {
		t.Fatal(err)
	}
	a.Start()
	eng.RunUntil(150 * time.Millisecond)

	// The beacon's TIM must indicate buffered unicast for the client.
	if len(sn.beacons) == 0 || !sn.beacons[0].TIM.UnicastBuffered(aid) {
		t.Fatal("TIM does not indicate buffered unicast")
	}
	// Poll twice; the first delivery must carry MoreData.
	poll := &dot11.PSPoll{AID: aid, BSSID: bssid, TA: c1Addr}
	med.Transmit(c1Addr, poll.Marshal(), dot11.Rate1Mbps)
	eng.RunUntil(160 * time.Millisecond)
	med.Transmit(c1Addr, poll.Marshal(), dot11.Rate1Mbps)
	eng.RunUntil(200 * time.Millisecond)

	if len(sn.data) != 2 {
		t.Fatalf("received %d unicast frames, want 2", len(sn.data))
	}
	if !sn.data[0].Header.FC.MoreData || sn.data[1].Header.FC.MoreData {
		t.Error("MoreData bits wrong across PS-Poll deliveries")
	}
	if a.Stats().PSPollsServed != 2 {
		t.Errorf("PSPollsServed = %d, want 2", a.Stats().PSPollsServed)
	}
}

func TestEnqueueUnicastUnknownClient(t *testing.T) {
	_, _, a, _ := rig(t, Config{})
	if err := a.EnqueueUnicast(c2Addr, dot11.UDPDatagram{}, dot11.Rate1Mbps); err == nil {
		t.Fatal("unicast for unassociated client accepted")
	}
}

func TestAssociateDuplicateRejected(t *testing.T) {
	_, _, a, _ := rig(t, Config{})
	if _, err := a.Associate(c1Addr, false); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Associate(c1Addr, false); err == nil {
		t.Fatal("duplicate association accepted")
	}
}

func TestDisassociateClearsPorts(t *testing.T) {
	_, _, a, _ := rig(t, Config{HIDE: true})
	aid, err := a.Associate(c1Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	a.Table().Update(aid, []uint16{53})
	a.Disassociate(c1Addr)
	if a.Table().Len() != 0 {
		t.Error("disassociation left port entries behind")
	}
	// The address can re-associate afterwards.
	if _, err := a.Associate(c1Addr, true); err != nil {
		t.Errorf("re-association failed: %v", err)
	}
}

func TestTIMBroadcastBitOnlyOnDTIMWithTraffic(t *testing.T) {
	eng, _, a, sn := rig(t, Config{DTIMPeriod: 2})
	a.Start()
	// Enqueue traffic mid-run so some DTIMs are empty.
	eng.MustScheduleAt(250*time.Millisecond, func(time.Duration) {
		a.EnqueueGroup(dot11.UDPDatagram{DstPort: 1900}, dot11.Rate1Mbps)
	})
	eng.RunUntil(time.Second)
	sawSet := false
	for _, b := range sn.beacons {
		if b.TIM.Broadcast {
			sawSet = true
			if b.TIM.DTIMCount != 0 {
				t.Error("broadcast bit set on a non-DTIM beacon")
			}
		}
	}
	if !sawSet {
		t.Error("broadcast bit never set despite buffered traffic")
	}
}

func TestUnicastFilteringExtension(t *testing.T) {
	_, _, a, _ := rig(t, Config{HIDE: true, FilterUnicast: true})
	aid, err := a.Associate(c1Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	a.Table().Update(aid, []uint16{5000})

	// Open port: buffered. Closed port: dropped.
	if err := a.EnqueueUnicast(c1Addr, dot11.UDPDatagram{DstPort: 5000}, dot11.Rate11Mbps); err != nil {
		t.Fatal(err)
	}
	if err := a.EnqueueUnicast(c1Addr, dot11.UDPDatagram{DstPort: 6000}, dot11.Rate11Mbps); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().UnicastFiltered; got != 1 {
		t.Errorf("UnicastFiltered = %d, want 1", got)
	}
	if got := len(a.clients[c1Addr].unicast); got != 1 {
		t.Errorf("buffered unicast frames = %d, want 1 (closed-port frame dropped)", got)
	}
}

func TestUnicastFilteringSparesLegacyClients(t *testing.T) {
	_, _, a, _ := rig(t, Config{HIDE: true, FilterUnicast: true})
	if _, err := a.Associate(c1Addr, false); err != nil { // legacy client
		t.Fatal(err)
	}
	if err := a.EnqueueUnicast(c1Addr, dot11.UDPDatagram{DstPort: 6000}, dot11.Rate11Mbps); err != nil {
		t.Fatal(err)
	}
	if a.Stats().UnicastFiltered != 0 {
		t.Error("legacy client's unicast was filtered")
	}
	if len(a.clients[c1Addr].unicast) != 1 {
		t.Error("legacy client's unicast not buffered")
	}
}

func TestUnicastFilteringOffByDefault(t *testing.T) {
	_, _, a, _ := rig(t, Config{HIDE: true})
	aid, err := a.Associate(c1Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	a.Table().Update(aid, []uint16{5000})
	if err := a.EnqueueUnicast(c1Addr, dot11.UDPDatagram{DstPort: 6000}, dot11.Rate11Mbps); err != nil {
		t.Fatal(err)
	}
	if a.Stats().UnicastFiltered != 0 || len(a.clients[c1Addr].unicast) != 1 {
		t.Error("unicast filtered despite extension disabled")
	}
}

func TestAssocRequestOverTheAir(t *testing.T) {
	eng, med, a, sn := rig(t, Config{HIDE: true})
	req := &dot11.AssocRequest{
		Header:      dot11.MACHeader{Addr1: bssid, Addr2: c1Addr, Addr3: bssid},
		SSID:        "test",
		HIDECapable: true,
		Ports:       []uint16{5353},
	}
	raw, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	med.Transmit(c1Addr, raw, dot11.Rate1Mbps)
	eng.Run()
	if a.Stats().AssocResponses != 1 {
		t.Fatalf("AssocResponses = %d, want 1", a.Stats().AssocResponses)
	}
	c, ok := a.clients[c1Addr]
	if !ok || !c.hideCapable {
		t.Fatal("client not registered as HIDE-capable")
	}
	if !a.Table().Listening(5353, c.aid) {
		t.Fatal("assoc request ports not seeded into table")
	}
	_ = sn
}

func TestAssocRequestRetryGetsSameAID(t *testing.T) {
	eng, med, a, _ := rig(t, Config{HIDE: true})
	req := &dot11.AssocRequest{
		Header: dot11.MACHeader{Addr1: bssid, Addr2: c1Addr, Addr3: bssid},
		SSID:   "test",
	}
	raw, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	med.Transmit(c1Addr, raw, dot11.Rate1Mbps)
	eng.Run()
	first := a.clients[c1Addr].aid
	med.Transmit(c1Addr, raw, dot11.Rate1Mbps) // retransmission
	eng.Run()
	if a.Stats().AssocResponses != 2 {
		t.Fatalf("AssocResponses = %d, want 2", a.Stats().AssocResponses)
	}
	if a.clients[c1Addr].aid != first {
		t.Error("retry changed the client's AID")
	}
}

func TestAPReceiveGarbageNeverPanics(t *testing.T) {
	eng, _, a, _ := rig(t, Config{HIDE: true})
	a.Start()
	r := sim.NewRNG(321)
	for i := 0; i < 500; i++ {
		n := r.Intn(64)
		raw := make([]byte, n)
		for j := range raw {
			raw[j] = byte(r.Uint64())
		}
		a.Receive(raw, dot11.Rate1Mbps, eng.Now())
	}
	eng.RunUntil(time.Second)
	if a.Stats().BeaconsSent == 0 {
		t.Fatal("AP stopped beaconing after garbage")
	}
}

func TestOversizeSSIDClamped(t *testing.T) {
	long := strings.Repeat("x", 100)
	eng, _, a, sn := rig(t, Config{SSID: long})
	a.Start()
	eng.RunUntil(150 * time.Millisecond) // must not panic
	if len(sn.beacons) == 0 {
		t.Fatal("no beacon with clamped SSID")
	}
	if got := sn.beacons[0].SSID; len(got) != 32 {
		t.Fatalf("SSID length = %d, want clamped to 32", len(got))
	}
}
