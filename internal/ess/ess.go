// Package ess assembles an Extended Service Set: K HIDE-capable APs,
// each owning its own medium shard and event loop, joined by a
// distribution-system (DS) channel, with clients that roam between
// the APs via disassociation/reassociation frames.
//
// # Execution model
//
// Each AP shard is a complete single-BSS simulation — an engine, a
// medium, an AP, and the stations currently homed there — built from
// the same core.Network assembly the single-AP runs use. The ESS
// advances all shards in lockstep windows: every shard's engine runs
// to the same barrier instant (one goroutine per shard, bounded by
// Config.Workers), and all cross-shard effects — roams and DS
// directory merges — are applied serially at the barrier, in client
// index order. During a window shards share nothing mutable (each
// appends to its own DS queue and reads the directory that is only
// written between windows), so the run is byte-identical for any
// worker count, and a roam-free K=1 ESS replays exactly the event
// sequence of a plain core.Network — the equivalence the check
// package proves.
//
// # Roaming
//
// Mobility is seed-driven: at each barrier every client tosses a
// deterministic RNG against the per-window roam probability and, on a
// hit, moves to a uniformly chosen other AP. The handoff is
// firmware-level — the host stays suspended — so the station's open
// ports are NOT re-sent in the reassociation request. What happens to
// the Client UDP Port Table distinguishes the two policies under
// study:
//
//   - Cold (Replicate false): the new AP knows nothing about the
//     client's ports. Its BTIM bits stay clear until the client's
//     next port sync (the hardened TTL-refresh piggyback, or the next
//     host wake) — the resync window, during which every wanted
//     broadcast frame is silently hidden from the client.
//   - Replicated (Replicate true): every port set an AP learns from
//     the air is exported to the DS at the next barrier, and the
//     roam-target AP seeds its table from the replicated directory at
//     reassociation time — no resync window, at the cost of DS
//     traffic.
//
// Stats counts both the wanted-frame misses and the subset
// attributable to resync windows, so the energy/miss cost of cold
// versus replicated handoffs can be quantified across churn rates.
package ess

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/station"
	"repro/internal/trace"
)

// essBSSIDBase anchors shard BSSIDs: AP k lives at AddrAdd(base, k+1),
// so shard 0 owns the single-AP default {..., 0x00, 0x01} and a K=1
// ESS keeps the exact BSSID a plain core.Network would use.
var essBSSIDBase = dot11.MACAddr{0x02, 0x1d, 0xe0, 0x00, 0x00, 0x00}

// maxAPs keeps the BSSID block clear of the station address space,
// which starts 0x010000 addresses above the AP base.
const maxAPs = 0xfffe

// Config configures New.
type Config struct {
	// APs is the number of access points K (default 1).
	APs int
	// Network is the per-shard assembly template. Shard k derives its
	// seed as Network.Seed+k and its BSSID from the ESS block; the
	// SSID, DTIM cadence, HIDE/Harden knobs, and loss probability are
	// shared by every AP of the ESS.
	Network core.NetworkConfig
	// FaultFor, when set, builds shard k's fault plan. Network.Fault
	// must stay nil when APs > 1: plans may be stateful and a single
	// instance cannot be shared across shard goroutines.
	FaultFor func(shard int) fault.Plan
	// Window is the barrier spacing (default one beacon interval).
	// Roams and DS merges happen only at window barriers.
	Window time.Duration
	// Replicate selects the warm-handoff policy: port tables are
	// proactively replicated over the DS and seeded into the
	// roam-target AP at reassociation time. False leaves handoffs
	// cold — BTIM filtering resumes only after the client's next UDP
	// Port Message.
	Replicate bool
	// RoamRate is the expected number of roams per client per minute.
	// Zero disables mobility.
	RoamRate float64
	// RoamSeed drives the mobility and DS-loss RNGs.
	RoamSeed uint64
	// DSLoss is the probability that one replicated record is lost in
	// the distribution system (dropped at the merge barrier) — the
	// chaos knob the roam-under-fault suite targets.
	DSLoss float64
	// Workers bounds the shard parallelism: 0 selects
	// runtime.GOMAXPROCS(0), 1 forces the sequential path. The
	// result is byte-identical for any value.
	Workers int
}

// Stats aggregates ESS-level protocol activity.
type Stats struct {
	// Roams counts completed handoffs (cohort handoffs included);
	// CohortRoams is the cohort subset.
	Roams       int
	CohortRoams int
	// RoamsDeferred counts mobility hits that could not move the
	// client this window (mid-handshake cohorts, crashed or
	// unassociated stations).
	RoamsDeferred int
	// Reassociations sums the reassociation exchanges served by all
	// APs (retries make it ≥ Roams for station roams).
	Reassociations int
	// DSRecordsReplicated and DSRecordsDropped count port-table
	// records merged into, and lost on the way to, the DS directory.
	DSRecordsReplicated int
	DSRecordsDropped    int
	// PortsSeededOnRoam counts port-table entries seeded at
	// reassociation time from the replicated directory.
	PortsSeededOnRoam int
	// WantedMisses counts buffered group frames a HIDE client
	// listening on the frame's port slept through because its BTIM
	// bit was clear; ResyncWindowMisses is the subset incurred while
	// the client's current AP had no acknowledged copy of its ports —
	// the cold-handoff cost.
	WantedMisses       int
	ResyncWindowMisses int
}

// dsRecord is one replicated port-table entry in flight to the DS.
type dsRecord struct {
	addr  dot11.MACAddr
	ports []uint16
}

// homedStation pairs a station with its mode for the miss observer.
type homedStation struct {
	st   *station.Station
	mode station.Mode
}

// homedCohort pairs a cohort with its mode.
type homedCohort struct {
	c    *station.CohortStation
	mode station.Mode
}

// Shard is one AP's slice of the ESS: a complete single-BSS assembly
// plus the DS queue and miss counters local to its event loop.
type Shard struct {
	// Net is the shard's single-BSS assembly (engine, medium, AP).
	Net *core.Network

	idx      int
	dsQueue  []dsRecord
	stations []homedStation // clients homed here; mutated only at barriers
	cohorts  []homedCohort

	wantedMisses int
	resyncMisses int
}

// BeaconBuilt implements ap.Observer: on every DTIM with buffered
// group traffic it charges a wanted-frame miss for each HIDE client
// homed on this shard that listens on a buffered frame's port but
// whose BTIM bit is clear. It runs on the shard's event loop and
// touches only shard-local clients, so windows stay race-free.
func (sh *Shard) BeaconBuilt(now time.Duration, v ap.BeaconView) {
	if !v.IsDTIM || len(v.BufferedPorts) == 0 || v.Beacon.BTIM == nil {
		return
	}
	btim := v.Beacon.BTIM
	for _, h := range sh.stations {
		if h.mode != station.HIDE || !h.st.Associated() || h.st.Crashed() {
			continue
		}
		wanted := 0
		for _, p := range v.BufferedPorts {
			if h.st.ListensOn(p) {
				wanted++
			}
		}
		if wanted == 0 || btim.UsefulBroadcastBuffered(h.st.AID()) {
			continue
		}
		sh.wantedMisses += wanted
		if !h.st.Synced() {
			sh.resyncMisses += wanted
		}
	}
	for _, h := range sh.cohorts {
		if h.mode != station.HIDE {
			continue
		}
		for _, seg := range h.c.Segments() {
			if seg.Aggregate() {
				continue
			}
			wanted := 0
			for _, p := range v.BufferedPorts {
				if seg.ListensOn(p) {
					wanted++
				}
			}
			// Members share one port set and one synced port table, so
			// the first member's bit stands for the block.
			if wanted == 0 || btim.UsefulBroadcastBuffered(seg.BaseAID()) {
				continue
			}
			sh.wantedMisses += wanted * seg.Count()
			if !seg.Synced() {
				sh.resyncMisses += wanted * seg.Count()
			}
		}
	}
}

// member is one roamable client in global attachment order.
type member struct {
	st    *station.Station       // nil for cohorts
	coh   *station.CohortStation // nil for stations
	mode  station.Mode
	shard int
}

// ESS is the multi-AP assembly. Create with New, populate with
// AddStation/AddCohort, then drive with RunContext.
type ESS struct {
	cfg     Config
	window  time.Duration
	shards  []*Shard
	members []*member
	dir     map[dot11.MACAddr][]uint16 // DS directory; written only at barriers
	roamRng *sim.RNG
	dsRng   *sim.RNG
	stats   Stats
	used    int // station addresses consumed (cohort members included)
	placed  int // Add* calls, for round-robin shard placement
	now     time.Duration
}

// New builds K AP shards from the shared network template.
func New(cfg Config) (*ESS, error) {
	k := cfg.APs
	if k <= 0 {
		k = 1
	}
	if k > maxAPs {
		return nil, fmt.Errorf("ess: %d APs exceeds the BSSID block (max %d)", k, maxAPs)
	}
	if k > 1 && cfg.Network.Fault != nil {
		return nil, fmt.Errorf("ess: Network.Fault cannot be shared across %d shards; use FaultFor", k)
	}
	if cfg.Network.BSSID != (dot11.MACAddr{}) {
		return nil, fmt.Errorf("ess: shard BSSIDs are assigned from the ESS block; Network.BSSID must be zero")
	}
	window := cfg.Window
	if window <= 0 {
		window = dot11.DefaultBeaconInterval
	}
	e := &ESS{
		cfg:     cfg,
		window:  window,
		dir:     make(map[dot11.MACAddr][]uint16),
		roamRng: sim.NewRNG(cfg.RoamSeed ^ 0x9e3779b97f4a7c15),
		dsRng:   sim.NewRNG(cfg.RoamSeed ^ 0xd1b54a32d192ed03),
	}
	for i := 0; i < k; i++ {
		ncfg := cfg.Network
		ncfg.Seed += uint64(i)
		ncfg.BSSID = dot11.AddrAdd(essBSSIDBase, i+1)
		if cfg.FaultFor != nil {
			ncfg.Fault = cfg.FaultFor(i)
		}
		n, err := core.NewNetwork(ncfg)
		if err != nil {
			return nil, fmt.Errorf("ess: shard %d: %w", i, err)
		}
		sh := &Shard{Net: n, idx: i}
		if cfg.Replicate {
			n.AP.SetPortSync(func(addr dot11.MACAddr, ports []uint16) {
				sh.dsQueue = append(sh.dsQueue, dsRecord{
					addr: addr, ports: append([]uint16(nil), ports...),
				})
			})
			n.AP.SetRoamPortLookup(func(addr dot11.MACAddr) []uint16 { return e.dir[addr] })
		}
		n.AP.SetObserver(sh)
		e.shards = append(e.shards, sh)
	}
	return e, nil
}

// Shards returns the AP shards in index order.
func (e *ESS) Shards() []*Shard { return e.shards }

// Now returns the current barrier time.
func (e *ESS) Now() time.Duration { return e.now }

// AddStation creates a station homed on the next shard (round-robin)
// and starts the frame-level association exchange, exactly as
// core.Network.AddStation does: the station's address, configuration,
// and hardening knobs come from the shard's own assembly, with the
// index allocated ESS-globally so addresses stay unique across
// shards.
func (e *ESS) AddStation(mode station.Mode, openPorts []uint16, li int) (*station.Station, error) {
	sh := e.shards[e.placed%len(e.shards)]
	scfg, err := sh.Net.StationConfigAt(e.used+1, mode, li)
	if err != nil {
		return nil, err
	}
	st := station.New(sh.Net.Engine, sh.Net.Medium, scfg)
	for _, p := range openPorts {
		st.OpenPort(p)
	}
	st.StartAssociation(sh.Net.SSID)
	e.used++
	e.placed++
	sh.stations = append(sh.stations, homedStation{st: st, mode: mode})
	e.members = append(e.members, &member{st: st, mode: mode, shard: sh.idx})
	return st, nil
}

// AddCohort creates a cohort homed on the next shard (round-robin)
// with the same regime selection as core.Network.AddCohort: exact
// while the block fits the shard AP's free AID space, aggregate
// beyond. Exact cohorts roam as a unit via the cohort-aware handoff.
func (e *ESS) AddCohort(mode station.Mode, openPorts []uint16, count, li int) (*station.CohortStation, error) {
	if count < 1 {
		return nil, fmt.Errorf("ess: cohort count %d < 1", count)
	}
	sh := e.shards[e.placed%len(e.shards)]
	scfg, err := sh.Net.StationConfigAt(e.used+1, mode, li)
	if err != nil {
		return nil, err
	}
	if e.used+count+0x010000 > dot11.MaxAddrBlock {
		return nil, fmt.Errorf("ess: cohort of %d exceeds the station address space", count)
	}
	exact := count <= sh.Net.AP.FreeAIDs()
	c, err := station.NewCohort(sh.Net.Engine, sh.Net.Medium, station.CohortConfig{
		Config:    scfg,
		Count:     count,
		Aggregate: !exact,
	})
	if err != nil {
		return nil, err
	}
	for _, p := range openPorts {
		c.OpenPort(p)
	}
	var first dot11.AID
	if exact {
		first, err = sh.Net.AP.AssociateCohort(scfg.Addr, count, mode == station.HIDE)
	} else {
		first, err = sh.Net.AP.AssociateAggregate(scfg.Addr, count, mode == station.HIDE)
	}
	if err != nil {
		return nil, err
	}
	if err := c.JoinBlock(first); err != nil {
		return nil, err
	}
	e.used += count
	e.placed++
	sh.cohorts = append(sh.cohorts, homedCohort{c: c, mode: mode})
	e.members = append(e.members, &member{coh: c, mode: mode, shard: sh.idx})
	return c, nil
}

// Stations returns the individually-modeled stations in global
// attachment order, regardless of which shard they currently home on.
func (e *ESS) Stations() []*station.Station {
	var out []*station.Station
	for _, m := range e.members {
		if m.st != nil {
			out = append(out, m.st)
		}
	}
	return out
}

// Cohorts returns the cohorts in global attachment order.
func (e *ESS) Cohorts() []*station.CohortStation {
	var out []*station.CohortStation
	for _, m := range e.members {
		if m.coh != nil {
			out = append(out, m.coh)
		}
	}
	return out
}

// Members returns the number of clients the ESS models, counting
// cohorts with their multiplicity.
func (e *ESS) Members() int {
	n := 0
	for _, m := range e.members {
		if m.coh != nil {
			n += m.coh.Count()
		} else {
			n++
		}
	}
	return n
}

// StationEnergy prices a station's recorded arrivals with the Section
// IV model; arrivals and listen interval are station-local, so any
// shard's assembly can do the pricing.
func (e *ESS) StationEnergy(st *station.Station, dev energy.Profile, duration time.Duration, withOverhead bool) (energy.Breakdown, error) {
	return e.shards[0].Net.StationEnergy(st, dev, duration, withOverhead)
}

// Run is RunContext with a background context.
func (e *ESS) Run(tr *trace.Trace) error { return e.RunContext(context.Background(), tr) }

// RunContext replays the broadcast trace through every AP (the same
// upstream broadcast reaches each AP from the distribution system)
// and drives all shards to the trace end in lockstep windows, merging
// the DS and applying roams at each barrier. The final window lands
// on exactly the deadline a plain core.Network.Replay would use, so a
// roam-free K=1 run is byte-identical to the single-AP path.
func (e *ESS) RunContext(ctx context.Context, tr *trace.Trace) error {
	for _, sh := range e.shards {
		if err := sh.Net.ScheduleReplay(tr); err != nil {
			return err
		}
	}
	end := tr.Duration + dot11.DefaultBeaconInterval
	for e.now < end {
		next := e.now + e.window
		if next > end {
			next = end
		}
		err := engine.ForEach(ctx, e.cfg.Workers, len(e.shards), func(ctx context.Context, k int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			e.shards[k].Net.Engine.RunUntil(next)
			return nil
		})
		if err != nil {
			return err
		}
		e.now = next
		e.mergeDS()
		if next < end && len(e.shards) > 1 && e.cfg.RoamRate > 0 {
			if err := e.applyRoams(); err != nil {
				return err
			}
		}
	}
	return nil
}

// mergeDS folds every shard's replication queue into the directory,
// in shard order — the serial barrier step that keeps directory reads
// race-free during windows. DSLoss drops records here: a lost record
// leaves the directory holding the previous (possibly stale) entry.
func (e *ESS) mergeDS() {
	for _, sh := range e.shards {
		for _, r := range sh.dsQueue {
			//lint:ignore rngdraw DSLoss is fixed per-run config, so the short-circuit guard is constant for the whole run and the draw count per record cannot vary
			if e.cfg.DSLoss > 0 && e.dsRng.Float64() < e.cfg.DSLoss {
				e.stats.DSRecordsDropped++
				continue
			}
			e.dir[r.addr] = r.ports
			e.stats.DSRecordsReplicated++
		}
		sh.dsQueue = sh.dsQueue[:0]
	}
}

// applyRoams tosses every client against the per-window roam
// probability, in global attachment order with a single RNG stream —
// the same mobility sequence for any worker count.
func (e *ESS) applyRoams() error {
	k := len(e.shards)
	perWindow := e.cfg.RoamRate * e.window.Minutes()
	if perWindow > 1 {
		perWindow = 1
	}
	for _, m := range e.members {
		if e.roamRng.Float64() >= perWindow {
			continue
		}
		tgt := int(e.roamRng.Float64() * float64(k-1))
		if tgt >= k-1 {
			tgt = k - 2
		}
		if tgt >= m.shard {
			tgt++
		}
		if err := e.roam(m, tgt); err != nil {
			return err
		}
	}
	return nil
}

// roam moves one client from its current shard to tgt at the current
// barrier. Stations leave with a disassociation frame and reassociate
// on the new shard; exact cohorts hand off as a block.
func (e *ESS) roam(m *member, tgt int) error {
	old, nw := e.shards[m.shard], e.shards[tgt]
	if m.st != nil {
		st := m.st
		if !st.Associated() || st.Crashed() {
			e.stats.RoamsDeferred++
			return nil
		}
		st.Leave(dot11.ReasonStationLeft)
		st.Migrate(nw.Net.Engine, nw.Net.Medium, nw.Net.BSSID)
		st.Reassociate(nw.Net.SSID, old.Net.BSSID)
		old.removeStation(st)
		nw.stations = append(nw.stations, homedStation{st: st, mode: m.mode})
		m.shard = tgt
		e.stats.Roams++
		return nil
	}
	c := m.coh
	if err := c.Handoff(nw.Net.Engine, nw.Net.Medium, nw.Net.BSSID); err != nil {
		// Aggregate, split, or mid-handshake cohorts stay put; the next
		// mobility hit retries.
		e.stats.RoamsDeferred++
		return nil
	}
	for i := 0; i < c.Count(); i++ {
		old.Net.AP.Disassociate(c.MemberAddr(i))
	}
	first, err := nw.Net.AP.AssociateCohort(c.BaseAddr(), c.Count(), m.mode == station.HIDE)
	if err != nil {
		return fmt.Errorf("ess: cohort roam re-association: %w", err)
	}
	if err := c.RejoinBlock(first); err != nil {
		return err
	}
	if e.cfg.Replicate {
		// Cohorts associate out of band, so the warm seed is applied out
		// of band too — one directory lookup per member, mirroring what
		// the AP does for a station's reassociation frame.
		for i := 0; i < c.Count(); i++ {
			if ports := e.dir[c.MemberAddr(i)]; ports != nil {
				nw.Net.AP.Table().UpdateAt(first+dot11.AID(i), ports, e.now)
				e.stats.PortsSeededOnRoam += len(ports)
			}
		}
	}
	old.removeCohort(c)
	nw.cohorts = append(nw.cohorts, homedCohort{c: c, mode: m.mode})
	m.shard = tgt
	e.stats.Roams++
	e.stats.CohortRoams++
	return nil
}

// removeStation drops a station from the shard's homed list,
// preserving order.
func (sh *Shard) removeStation(st *station.Station) {
	for i := range sh.stations {
		if sh.stations[i].st == st {
			sh.stations = append(sh.stations[:i], sh.stations[i+1:]...)
			return
		}
	}
}

// removeCohort drops a cohort from the shard's homed list, preserving
// order.
func (sh *Shard) removeCohort(c *station.CohortStation) {
	for i := range sh.cohorts {
		if sh.cohorts[i].c == c {
			sh.cohorts = append(sh.cohorts[:i], sh.cohorts[i+1:]...)
			return
		}
	}
}

// Stats sums the barrier-side counters with every shard's local miss
// and AP counters. Call it after RunContext returns (shard counters
// are not synchronized during windows).
func (e *ESS) Stats() Stats {
	s := e.stats
	for _, sh := range e.shards {
		s.WantedMisses += sh.wantedMisses
		s.ResyncWindowMisses += sh.resyncMisses
		as := sh.Net.AP.Stats()
		s.Reassociations += as.Reassociations
		s.PortsSeededOnRoam += as.PortsSeededOnRoam
	}
	return s
}
