package ap

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/medium"
	"repro/internal/porttable"
	"repro/internal/sim"
)

// TestAllocBudgetBeaconEncodeIdleDTIM pins the cached beacon path — the
// encode behind every idle DTIM — at zero allocations: the patch writes
// the sequence number, TSF timestamp, DTIM count, and broadcast bit into
// the cached bytes in place.
func TestAllocBudgetBeaconEncodeIdleDTIM(t *testing.T) {
	_, a := benchAP(20, 1)
	now := a.cfg.BeaconInterval
	a.encodeBeacon(now, true) // warm: full rebuild into the cache
	allocs := testing.AllocsPerRun(200, func() {
		now += a.cfg.BeaconInterval
		a.encodeBeacon(now, true)
	})
	if allocs != 0 {
		t.Fatalf("cached DTIM encode: %.1f allocs/op, want 0", allocs)
	}
}

// cacheStale mirrors encodeBeacon's rebuild predicate: it reports
// whether the next encode will take the from-scratch path.
func cacheStale(a *AP) bool {
	bc := &a.cache
	return !bc.valid || a.dirty || a.flagFn != nil || a.table.Gen() != bc.tableGen
}

// encodeBoth encodes one beacon through the production path (cached or
// rebuilt, whatever encodeBeacon picks), then rolls the sequence counter
// back and forces a from-scratch rebuild of the very same beacon. The
// two byte streams must be identical: the patch path may only touch
// fields that legitimately change between beacons.
func encodeBoth(a *AP, now time.Duration, isDTIM bool) (got, want []byte) {
	seq := a.seq
	_, raw := a.encodeBeacon(now, isDTIM)
	got = append([]byte(nil), raw...)
	a.seq = seq
	a.dirty = true
	_, raw2 := a.encodeBeacon(now, isDTIM)
	want = append([]byte(nil), raw2...)
	return got, want
}

// TestBeaconCacheInvalidation drives every mutation path that can change
// beacon contents and asserts two properties at each step: the mutation
// actually invalidates the cache (or, for no-op steps, leaves it warm),
// and the emitted bytes are bit-identical to a from-scratch rebuild for
// both DTIM and non-DTIM beacons.
func TestBeaconCacheInvalidation(t *testing.T) {
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 1)
	a := New(eng, med, Config{
		BSSID:      dot11.MACAddr{0x02, 0x1d, 0xe0, 0, 0, 1},
		SSID:       "inval",
		HIDE:       true,
		DTIMPeriod: 3,
	})
	addr := func(i int) dot11.MACAddr {
		return dot11.MACAddr{0x02, 0x1d, 0xe0, 0, 1, byte(i)}
	}
	var aids []dot11.AID
	for i := 0; i < 4; i++ {
		aid, err := a.Associate(addr(i), true)
		if err != nil {
			t.Fatalf("associate %d: %v", i, err)
		}
		a.Table().UpdateAt(aid, []uint16{5353, uint16(6000 + i)}, 0)
		aids = append(aids, aid)
	}

	now := 100 * time.Millisecond
	var lateAID dot11.AID
	steps := []struct {
		name      string
		wantStale bool
		mutate    func()
	}{
		{"initial-rebuild", true, func() {}},
		{"idle-patch", false, func() {}},
		{"port-table-update", true, func() {
			a.Table().UpdateAt(aids[0], []uint16{8080}, now)
		}},
		{"idle-patch-after-update", false, func() {}},
		{"port-table-remove", true, func() {
			a.Table().Remove(aids[1])
		}},
		{"port-table-expiry", true, func() {
			// aids[2] and aids[3] still carry their zero refresh stamp.
			if n := len(a.Table().ExpireBefore(50 * time.Millisecond)); n == 0 {
				t.Fatal("expiry swept no entries")
			}
		}},
		{"station-add", true, func() {
			var err error
			lateAID, err = a.Associate(addr(9), true)
			if err != nil {
				t.Fatalf("late associate: %v", err)
			}
		}},
		{"unicast-enqueue", true, func() {
			if err := a.EnqueueUnicast(addr(9), dot11.UDPDatagram{DstPort: 4000}, dot11.Rate11Mbps); err != nil {
				t.Fatalf("enqueue unicast: %v", err)
			}
		}},
		{"ps-poll-serve", true, func() {
			poll := &dot11.PSPoll{AID: lateAID, BSSID: a.cfg.BSSID, TA: addr(9)}
			a.handlePSPoll(poll.Marshal())
			if a.Stats().PSPollsServed != 1 {
				t.Fatal("PS-Poll not served")
			}
		}},
		{"group-enqueue", true, func() {
			a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate11Mbps)
		}},
		{"group-flush", true, func() {
			a.flushGroup()
		}},
		{"disassociate", true, func() {
			a.Disassociate(addr(9))
		}},
		{"restart", true, func() {
			a.Restart()
		}},
		{"flag-computer-set", true, func() {
			a.SetFlagComputer(func([]uint16, *porttable.Table) *dot11.VirtualBitmap {
				var b dot11.VirtualBitmap
				b.Set(1)
				return &b
			})
		}},
		{"flag-computer-cleared", true, func() {
			a.SetFlagComputer(nil)
		}},
		{"idle-patch-final", false, func() {}},
	}

	for _, s := range steps {
		s.mutate()
		if stale := cacheStale(a); stale != s.wantStale {
			t.Fatalf("%s: cache stale = %v, want %v", s.name, stale, s.wantStale)
		}
		for _, isDTIM := range []bool{true, false} {
			got, want := encodeBoth(a, now, isDTIM)
			if !bytes.Equal(got, want) {
				t.Errorf("%s (DTIM=%v): cached beacon differs from from-scratch rebuild\n got %x\nwant %x",
					s.name, isDTIM, got, want)
			}
		}
		if s.name == "flag-computer-set" && !cacheStale(a) {
			t.Fatal("flag-computer-set: stateful flag computer must keep the cache invalid")
		}
		now += a.cfg.BeaconInterval
	}
}
