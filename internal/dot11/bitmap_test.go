package dot11

import (
	"testing"
	"testing/quick"
)

func TestVirtualBitmapSetGetClear(t *testing.T) {
	var v VirtualBitmap
	if v.Any() {
		t.Fatal("zero bitmap reports Any")
	}
	for _, aid := range []AID{1, 7, 8, 9, 100, 2007} {
		v.Set(aid)
		if !v.Get(aid) {
			t.Errorf("Get(%d) = false after Set", aid)
		}
	}
	if v.Count() != 6 {
		t.Errorf("Count = %d, want 6", v.Count())
	}
	v.Clear(8)
	if v.Get(8) {
		t.Error("Get(8) = true after Clear")
	}
	if !v.Get(7) || !v.Get(9) {
		t.Error("Clear(8) disturbed neighbouring bits")
	}
}

func TestVirtualBitmapOutOfRange(t *testing.T) {
	var v VirtualBitmap
	v.Set(MaxAID + 1)
	if v.Any() {
		t.Fatal("Set beyond MaxAID changed the bitmap")
	}
	if v.Get(MaxAID + 1) {
		t.Fatal("Get beyond MaxAID returned true")
	}
}

func TestVirtualBitmapReset(t *testing.T) {
	var v VirtualBitmap
	for aid := AID(1); aid <= 64; aid++ {
		v.Set(aid)
	}
	v.Reset()
	if v.Any() || v.Count() != 0 {
		t.Fatal("Reset left bits set")
	}
	off, pm := v.Compress()
	if off != 0 || len(pm) != 1 || pm[0] != 0 {
		t.Fatalf("empty bitmap compressed to offset=%d partial=%v", off, pm)
	}
}

func TestCompressTrimsLeadingAndTrailing(t *testing.T) {
	var v VirtualBitmap
	// AIDs 33 and 40: octets 4 and 5. Leading zero octets 0..3 trim to
	// an even offset of 4; nothing follows octet 5.
	v.Set(33)
	v.Set(40)
	off, pm := v.Compress()
	if off != 4 {
		t.Errorf("offset = %d, want 4", off)
	}
	if len(pm) != 2 {
		t.Errorf("partial bitmap length = %d, want 2", len(pm))
	}
	if off%2 != 0 {
		t.Error("offset must be even (Figure 5)")
	}
}

func TestCompressOddLeadingRoundsDown(t *testing.T) {
	var v VirtualBitmap
	v.Set(24) // octet 3: three leading zero octets round down to offset 2
	off, pm := v.Compress()
	if off != 2 {
		t.Errorf("offset = %d, want 2 (N1 rounded down to even)", off)
	}
	if len(pm) != 2 || pm[0] != 0 {
		t.Errorf("partial = %v, want leading zero octet then data", pm)
	}
}

func TestDecompressRejectsOverflow(t *testing.T) {
	if _, err := Decompress(250, make([]byte, 10)); err == nil {
		t.Fatal("Decompress accepted a bitmap past capacity")
	}
}

func TestCompressRoundTripProperty(t *testing.T) {
	f := func(aids []uint16) bool {
		var v VirtualBitmap
		for _, a := range aids {
			v.Set(AID(a % 2008))
		}
		off, pm := v.Compress()
		if off%2 != 0 {
			return false
		}
		got, err := Decompress(off, pm)
		if err != nil {
			return false
		}
		for aid := AID(0); aid <= MaxAID; aid++ {
			if got.Get(aid) != v.Get(aid) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountMatchesSetBitsProperty(t *testing.T) {
	f := func(aids []uint16) bool {
		var v VirtualBitmap
		uniq := map[AID]bool{}
		for _, a := range aids {
			aid := AID(a % 2008)
			v.Set(aid)
			uniq[aid] = true
		}
		return v.Count() == len(uniq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
