package engine

import (
	"fmt"
	"sync"

	"repro/internal/trace"
)

// TraceCache memoizes synthetic trace generation. Every layer of the
// evaluation pipeline used to regenerate the scenario traces per call
// site (the suite, the oracle grid, the figure CLIs); the cache
// generates each distinct GenConfig exactly once — including under
// concurrent access, where later requesters block on the single
// in-flight generation (singleflight) instead of duplicating it.
//
// Cached traces are shared: callers must treat the returned *Trace as
// immutable. Every consumer in this repository already does — the
// policy layer, the energy model, and the trace transforms all read
// frames or build new traces.
type TraceCache struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	tr   *trace.Trace
	err  error
}

// Traces is the process-wide shared cache used by the evaluation
// pipeline and the differential oracle.
var Traces = &TraceCache{}

// key renders a GenConfig into a canonical map key. GenConfig holds
// slices, so it is not directly comparable; %#v is deterministic over
// its fields (no maps involved).
func key(cfg trace.GenConfig) string { return fmt.Sprintf("%#v", cfg) }

// Generate returns the trace for cfg, generating it on first use.
func (c *TraceCache) Generate(cfg trace.GenConfig) (*trace.Trace, error) {
	return c.generate(key(cfg), cfg)
}

// generate is Generate with the map key precomputed, so repeat callers
// (the per-scenario fast path) skip the %#v rendering.
func (c *TraceCache) generate(k string, cfg trace.GenConfig) (*trace.Trace, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]*cacheEntry)
	}
	e, ok := c.m[k]
	if !ok {
		e = &cacheEntry{}
		c.m[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.tr, e.err = trace.Generate(cfg) })
	return e.tr, e.err
}

// scenarioKeys memoizes the rendered cache key per scenario: every
// suite cell resolves its trace through Scenario, and the %#v render
// was costing more than the cache hit it guarded.
var scenarioKeys sync.Map // trace.Scenario → string

// Scenario returns the calibrated trace for one of the paper's five
// scenarios, generating it on first use.
func (c *TraceCache) Scenario(s trace.Scenario) (*trace.Trace, error) {
	cfg := trace.ScenarioConfig(s)
	k, ok := scenarioKeys.Load(s)
	if !ok {
		k, _ = scenarioKeys.LoadOrStore(s, key(cfg))
	}
	return c.generate(k.(string), cfg)
}

// Len reports how many distinct traces the cache holds.
func (c *TraceCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Reset drops every cached trace (tests use it to measure generation
// counts; production callers never need it).
func (c *TraceCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = nil
}
