package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/control"
)

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "hided.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadConfigDefaultsAndDurations(t *testing.T) {
	path := writeConfig(t, `{
		"listen": "127.0.0.1:0",
		"beacon_interval": "20ms",
		"drain_deadline": "2s",
		"ping_interval": 50000000
	}`)
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if time.Duration(cfg.BeaconInterval) != 20*time.Millisecond {
		t.Errorf("beacon_interval = %v", time.Duration(cfg.BeaconInterval))
	}
	if time.Duration(cfg.PingInterval) != 50*time.Millisecond {
		t.Errorf("numeric ping_interval = %v", time.Duration(cfg.PingInterval))
	}
	if time.Duration(cfg.DrainDeadline) != 2*time.Second {
		t.Errorf("drain_deadline = %v", time.Duration(cfg.DrainDeadline))
	}
	// Defaults filled in.
	if cfg.SSID != "hide-net" || cfg.DTIMPeriod != 3 || cfg.MaxMissedPings != 3 {
		t.Errorf("defaults drifted: %+v", cfg)
	}
	if cfg.Scenario != "Starbucks" {
		t.Errorf("default scenario = %q", cfg.Scenario)
	}
}

func TestLoadConfigRejectsBadInput(t *testing.T) {
	for name, body := range map[string]string{
		"unknown-field": `{"listne": "127.0.0.1:0"}`,
		"bad-duration":  `{"drain_deadline": "yesterday"}`,
		"bad-scenario":  `{"scenario": "NoSuchPlace"}`,
		"bad-bssid":     `{"bssid": "zz:zz:zz:zz:zz:zz"}`,
		"not-json":      `listen = 127.0.0.1`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadConfig(writeConfig(t, body)); err == nil {
				t.Fatalf("accepted %s", body)
			}
		})
	}
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("accepted a missing file")
	}
}

func TestDurationJSONRoundTrip(t *testing.T) {
	in := Duration(1500 * time.Millisecond)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `"1.5s"` {
		t.Fatalf("marshal = %s", data)
	}
	var out Duration
	if err := json.Unmarshal(data, &out); err != nil || out != in {
		t.Fatalf("round trip: %v %v", out, err)
	}
	if err := json.Unmarshal([]byte(`true`), &out); err == nil {
		t.Fatal("bool accepted as duration")
	}
}

func TestConfigDiffSplitsReloadable(t *testing.T) {
	cur := Config{}.normalized()
	next := cur
	next.Scenario = "Home"
	next.MaxMissedPings = 9
	next.Listen = "127.0.0.1:7777"
	next.DTIMPeriod = 1
	reloadable, restartOnly := cur.diff(next)
	if len(reloadable) != 2 {
		t.Errorf("reloadable = %v", reloadable)
	}
	if len(restartOnly) != 2 {
		t.Errorf("restartOnly = %v", restartOnly)
	}
	if r, ro := cur.diff(cur); len(r)+len(ro) != 0 {
		t.Errorf("self-diff not empty: %v %v", r, ro)
	}
}

// TestDaemonBootControlAndDrain boots a daemon on ephemeral ports,
// exercises the control plane over real HTTP, then cancels the run
// context and asserts the graceful drain completed.
func TestDaemonBootControlAndDrain(t *testing.T) {
	d, err := New(Config{
		Listen:         "127.0.0.1:0",
		Control:        "127.0.0.1:0",
		Scenario:       "none",
		BeaconInterval: Duration(20 * time.Millisecond),
		DrainDeadline:  Duration(2 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SetLogf(t.Logf)
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- d.Run(ctx) }()

	base := "http://" + d.ControlAddr().String()
	waitHTTP(t, base+"/healthz")

	var h control.Health
	getJSON(t, base+"/healthz", &h)
	if h.Status != "ok" || h.Draining {
		t.Fatalf("health = %+v", h)
	}
	resp, err := http.Post(base+"/v1/inject", "application/json",
		strings.NewReader(`{"port":5353,"count":2}`))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("inject: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if !strings.Contains(body, "hided_up 1") || !strings.Contains(body, "hided_beacons_sent_total") {
		t.Fatalf("metrics missing expected series:\n%s", body)
	}
	// Reload without a config file is a clean client error, not a hang.
	resp, err = http.Post(base+"/v1/reload", "application/json", nil)
	if err != nil || resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("fileless reload: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	select {
	case <-d.Drained():
	default:
		t.Fatal("shutdown skipped the graceful drain")
	}
}

// TestReloadAppliesSubsetFromFile edits the config file under a
// running daemon's feet and reloads.
func TestReloadAppliesSubsetFromFile(t *testing.T) {
	path := writeConfig(t, `{
		"listen": "127.0.0.1:0",
		"control": "127.0.0.1:0",
		"scenario": "none",
		"max_missed_pings": 3
	}`)
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	d.SetLogf(t.Logf)
	if summary, err := d.Reload(); err != nil || summary != "no changes" {
		t.Fatalf("idempotent reload: %q %v", summary, err)
	}
	// max_missed_pings is reloadable; ssid needs a restart. Scenario is
	// left alone so the reload path needs no running engine.
	if err := os.WriteFile(path, []byte(`{
		"listen": "127.0.0.1:0",
		"control": "127.0.0.1:0",
		"scenario": "none",
		"max_missed_pings": 7,
		"ssid": "other-net"
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	summary, err := d.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "applied: max_missed_pings: 3 -> 7") {
		t.Errorf("summary missing applied change: %q", summary)
	}
	if !strings.Contains(summary, "requires restart: ssid") {
		t.Errorf("summary missing restart-only change: %q", summary)
	}
	if d.Config().MaxMissedPings != 7 {
		t.Errorf("reloadable field not applied: %+v", d.Config())
	}
	if d.Config().SSID != "hide-net" {
		t.Errorf("restart-only field applied live: %+v", d.Config())
	}
	// A now-broken file fails the reload and keeps the old config.
	if err := os.WriteFile(path, []byte(`{"scenario":"Nowhere"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Reload(); err == nil {
		t.Fatal("broken file reloaded")
	}
	if d.Config().MaxMissedPings != 7 {
		t.Error("failed reload clobbered the config")
	}
}

func waitHTTP(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never came up", url)
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

// TestClientConfigDefaults pins the normalized defaults the state
// machine's timings derive from.
func TestClientConfigDefaults(t *testing.T) {
	c := ClientConfig{}.normalized()
	if c.ReconnectBase != 200*time.Millisecond || c.ReconnectMax != 5*time.Second {
		t.Errorf("backoff defaults drifted: %+v", c)
	}
	if c.DeadTimeout != 3*c.BeaconTimeout {
		t.Errorf("dead timeout default drifted: %+v", c)
	}
	if c.CheckInterval != c.BeaconTimeout/4 {
		t.Errorf("check interval default drifted: %+v", c)
	}
}

// TestClientBackoffGrowsAndJitters pins the backoff envelope:
// doubling from base, capped at max, jitter within ±25%.
func TestClientBackoffGrowsAndJitters(t *testing.T) {
	c, err := NewClient(ClientConfig{
		Connect:       "127.0.0.1:9", // discard port; never written to
		Addr:          [6]byte{2, 0, 0, 0, 0, 1},
		ReconnectBase: 100 * time.Millisecond,
		ReconnectMax:  time.Second,
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.link.Close()
	prevNominal := time.Duration(0)
	for i := 0; i < 8; i++ {
		nominal := 100 * time.Millisecond << i
		if nominal > time.Second {
			nominal = time.Second
		}
		c.mu.Lock()
		got := c.backoffLocked()
		c.mu.Unlock()
		lo, hi := nominal*3/4, nominal*5/4
		if got < lo || got > hi {
			t.Errorf("attempt %d: backoff %v outside [%v,%v]", i, got, lo, hi)
		}
		if nominal < prevNominal {
			t.Errorf("attempt %d: nominal backoff shrank", i)
		}
		prevNominal = nominal
	}
	if fmt.Sprint(StateConnecting, StateAssociated, StateDegraded, StateReconnecting, StateLost) !=
		"connecting associated degraded reconnecting lost" {
		t.Error("state names drifted")
	}
}
