// Package core wires the substrates together into the paper's
// trace-driven evaluation pipeline (Section VI-A): it applies a
// traffic-management policy to a tagged broadcast trace, runs the
// Section IV energy model, and produces the rows of Figures 7, 8 and 9.
//
// For the client-side solution the paper compares against "the lower
// bound energy consumption of the client-side solution derived by the
// authors" of [6]. This package computes that lower bound by sweeping
// the driver-processing wakelock the filter holds for a useless frame
// over a candidate set — from dropping instantly (cheap on sparse
// traffic, pathological suspend churn on dense traffic) up to the full
// 1 s wakelock (which degenerates to receive-all) — and keeping the
// cheapest outcome. By construction the lower bound never exceeds
// receive-all, matching the paper's "barely saves energy" observation
// on the heavy traces.
package core

import (
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/trace"
)

// clientSideSweep is the candidate driver-wakelock set for the
// client-side lower bound. The final candidate equals τ, i.e. the
// receive-all behaviour, so the lower bound is ≤ receive-all.
var clientSideSweep = []time.Duration{
	0,
	50 * time.Millisecond,
	100 * time.Millisecond,
	200 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
}

// Options tunes an evaluation. The zero value reproduces the paper's
// settings (Section VI-A2).
type Options struct {
	// Overhead is the HIDE protocol overhead configuration; the zero
	// value selects energy.DefaultOverhead() for HIDE policies.
	Overhead energy.Overhead
	// Seed drives usefulness tagging.
	Seed uint64
}

// normalized fills defaults.
func (o Options) normalized() Options {
	if o.Overhead == (energy.Overhead{}) {
		o.Overhead = energy.DefaultOverhead()
	}
	if o.Seed == 0 {
		o.Seed = 0x51de
	}
	return o
}

// Result is one evaluated (trace, device, policy, useful%) cell.
type Result struct {
	// Trace is the scenario name.
	Trace string
	// Device is the profile name.
	Device string
	// Policy identifies the solution evaluated.
	Policy policy.Kind
	// UsefulFraction is the fraction of broadcast frames useful to the
	// client (the x-axis annotation of Figures 7-8).
	UsefulFraction float64
	// Breakdown carries the energy components and suspend fraction.
	Breakdown energy.Breakdown
	// DriverWakelock is the wakelock chosen by the client-side
	// lower-bound sweep (zero for other policies).
	DriverWakelock time.Duration
}

// AvgPowerMW returns the average power in milliwatts, the y-axis of
// Figures 7 and 8.
func (r Result) AvgPowerMW() float64 { return r.Breakdown.AvgPowerW() * 1000 }

// Evaluate runs one policy over a tagged trace for one device.
func Evaluate(tr *trace.Trace, useful []bool, dev energy.Profile, kind policy.Kind, opts Options) (Result, error) {
	opts = opts.normalized()
	res := Result{
		Trace:          tr.Name,
		Device:         dev.Name,
		Policy:         kind,
		UsefulFraction: trace.UsefulFraction(useful),
	}
	cfg := energy.Config{Device: dev, Duration: tr.Duration}
	if kind.HasOverhead() {
		cfg.Overhead = opts.Overhead
	}

	if kind == policy.ClientSide {
		best := false
		for _, wl := range clientSideSweep {
			arr, err := policy.ClientSidePolicy{DriverWakelock: wl}.Apply(tr, useful)
			if err != nil {
				return Result{}, err
			}
			b, err := energy.Compute(arr, cfg)
			if err != nil {
				return Result{}, err
			}
			if !best || b.TotalJ() < res.Breakdown.TotalJ() {
				best = true
				res.Breakdown = b
				res.DriverWakelock = wl
			}
		}
		return res, nil
	}

	p, err := policy.New(kind)
	if err != nil {
		return Result{}, err
	}
	arr, err := p.Apply(tr, useful)
	if err != nil {
		return Result{}, err
	}
	b, err := energy.Compute(arr, cfg)
	if err != nil {
		return Result{}, err
	}
	res.Breakdown = b
	return res, nil
}

// EvaluateFraction tags the trace with a uniform useful fraction and
// evaluates the policy.
func EvaluateFraction(tr *trace.Trace, fraction float64, dev energy.Profile, kind policy.Kind, opts Options) (Result, error) {
	if fraction < 0 || fraction > 1 {
		return Result{}, fmt.Errorf("core: useful fraction %v outside [0, 1]", fraction)
	}
	opts = opts.normalized()
	useful := trace.TagUniform(tr, fraction, opts.Seed)
	return Evaluate(tr, useful, dev, kind, opts)
}

// UsefulFractions is the sweep of Figures 7-8: 10%, 8%, 6%, 4%, 2%.
var UsefulFractions = []float64{0.10, 0.08, 0.06, 0.04, 0.02}

// EnergyComparison is one trace's worth of Figure 7/8 bars: the
// receive-all bar, the client-side lower bound, and one HIDE bar per
// useful fraction.
type EnergyComparison struct {
	Trace      string
	Device     string
	ReceiveAll Result
	ClientSide Result
	HIDE       []Result // indexed like UsefulFractions
}

// Savings returns HIDE's energy saving versus receive-all for the i-th
// useful fraction, as a fraction in [0, 1].
func (c EnergyComparison) Savings(i int) float64 {
	ra := c.ReceiveAll.Breakdown.TotalJ()
	if ra <= 0 {
		return 0
	}
	return 1 - c.HIDE[i].Breakdown.TotalJ()/ra
}

// SavingsVsClientSide returns HIDE's saving versus the client-side
// lower bound for the i-th useful fraction.
func (c EnergyComparison) SavingsVsClientSide(i int) float64 {
	cs := c.ClientSide.Breakdown.TotalJ()
	if cs <= 0 {
		return 0
	}
	return 1 - c.HIDE[i].Breakdown.TotalJ()/cs
}

// CompareEnergy evaluates all Figure 7/8 bars for one trace and device.
func CompareEnergy(tr *trace.Trace, dev energy.Profile, opts Options) (EnergyComparison, error) {
	out := EnergyComparison{Trace: tr.Name, Device: dev.Name}
	var err error
	// The receive-all and client-side rows use the 10% tagging, like
	// the paper's first two bars.
	if out.ReceiveAll, err = EvaluateFraction(tr, 0.10, dev, policy.ReceiveAll, opts); err != nil {
		return out, err
	}
	if out.ClientSide, err = EvaluateFraction(tr, 0.10, dev, policy.ClientSide, opts); err != nil {
		return out, err
	}
	for _, f := range UsefulFractions {
		r, err := EvaluateFraction(tr, f, dev, policy.HIDE, opts)
		if err != nil {
			return out, err
		}
		out.HIDE = append(out.HIDE, r)
	}
	return out, nil
}

// SuspendRow is one trace's worth of Figure 9 bars: the fraction of
// time in suspend mode under each solution.
type SuspendRow struct {
	Trace      string
	Device     string
	ReceiveAll float64
	ClientSide float64
	HIDE10     float64
	HIDE2      float64
}

// SuspendFractions evaluates the Figure 9 row for one trace and device.
func SuspendFractions(tr *trace.Trace, dev energy.Profile, opts Options) (SuspendRow, error) {
	row := SuspendRow{Trace: tr.Name, Device: dev.Name}
	ra, err := EvaluateFraction(tr, 0.10, dev, policy.ReceiveAll, opts)
	if err != nil {
		return row, err
	}
	cs, err := EvaluateFraction(tr, 0.10, dev, policy.ClientSide, opts)
	if err != nil {
		return row, err
	}
	h10, err := EvaluateFraction(tr, 0.10, dev, policy.HIDE, opts)
	if err != nil {
		return row, err
	}
	h2, err := EvaluateFraction(tr, 0.02, dev, policy.HIDE, opts)
	if err != nil {
		return row, err
	}
	row.ReceiveAll = ra.Breakdown.SuspendFraction
	row.ClientSide = cs.Breakdown.SuspendFraction
	row.HIDE10 = h10.Breakdown.SuspendFraction
	row.HIDE2 = h2.Breakdown.SuspendFraction
	return row, nil
}

// Suite evaluates Figures 7/8 and 9 across all five scenarios for one
// device, generating the calibrated synthetic traces.
type Suite struct {
	Device      energy.Profile
	Comparisons []EnergyComparison // one per scenario
	Suspend     []SuspendRow       // one per scenario
}

// RunSuite generates all scenario traces and evaluates the full figure
// set for the device.
func RunSuite(dev energy.Profile, opts Options) (*Suite, error) {
	s := &Suite{Device: dev}
	for _, sc := range trace.Scenarios {
		tr, err := trace.GenerateScenario(sc)
		if err != nil {
			return nil, fmt.Errorf("core: generating %v: %w", sc, err)
		}
		cmp, err := CompareEnergy(tr, dev, opts)
		if err != nil {
			return nil, fmt.Errorf("core: comparing %v: %w", sc, err)
		}
		s.Comparisons = append(s.Comparisons, cmp)
		row, err := SuspendFractions(tr, dev, opts)
		if err != nil {
			return nil, fmt.Errorf("core: suspend fractions %v: %w", sc, err)
		}
		s.Suspend = append(s.Suspend, row)
	}
	return s, nil
}

// SavingsRange returns the min and max HIDE saving versus receive-all
// across the suite's scenarios for the given useful-fraction index —
// the paper's headline "34%-75%" style ranges.
func (s *Suite) SavingsRange(i int) (lo, hi float64) {
	lo, hi = 1, 0
	for _, c := range s.Comparisons {
		v := c.Savings(i)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
