package trace

import (
	"math"
	"sort"
	"time"
)

// Summary characterizes a trace the way the paper's Figure 6 and its
// surrounding discussion do: volume, burstiness, and inter-arrival
// structure. Burstiness drives the energy results — the paper notes
// that "frame arrival pattern" is one of the factors behind per-trace
// savings differences — so the summary quantifies it.
type Summary struct {
	// Frames and Duration identify the trace size.
	Frames   int
	Duration time.Duration
	// MeanFPS is the average frames per second (Figure 6's marker).
	MeanFPS float64
	// PeakFPS is the busiest second.
	PeakFPS int
	// IndexOfDispersion is Var(N)/Mean(N) over per-second counts: 1
	// for Poisson traffic, larger for bursty traffic.
	IndexOfDispersion float64
	// InterArrivalP50/P95 are inter-arrival time percentiles.
	InterArrivalP50 time.Duration
	InterArrivalP95 time.Duration
	// CV is the coefficient of variation of inter-arrival times: 1 for
	// exponential (Poisson), >1 for bursty.
	CV float64
	// MeanFrameBytes is the average MAC frame length.
	MeanFrameBytes float64
	// DistinctPorts is the number of distinct destination ports.
	DistinctPorts int
}

// Summarize computes the trace summary.
func Summarize(tr *Trace) Summary {
	s := Summary{Frames: len(tr.Frames), Duration: tr.Duration, MeanFPS: tr.MeanFPS()}

	counts := tr.FramesPerSecond()
	var sum, sumSq float64
	for _, c := range counts {
		if c > s.PeakFPS {
			s.PeakFPS = c
		}
		sum += float64(c)
		sumSq += float64(c) * float64(c)
	}
	if n := float64(len(counts)); n > 0 && sum > 0 {
		mean := sum / n
		variance := sumSq/n - mean*mean
		s.IndexOfDispersion = variance / mean
	}

	if len(tr.Frames) > 1 {
		gaps := make([]float64, 0, len(tr.Frames)-1)
		for i := 1; i < len(tr.Frames); i++ {
			gaps = append(gaps, float64(tr.Frames[i].At-tr.Frames[i-1].At))
		}
		sort.Float64s(gaps)
		s.InterArrivalP50 = time.Duration(gaps[len(gaps)/2])
		s.InterArrivalP95 = time.Duration(gaps[len(gaps)*95/100])
		var gSum, gSumSq float64
		for _, g := range gaps {
			gSum += g
			gSumSq += g * g
		}
		gMean := gSum / float64(len(gaps))
		if gMean > 0 {
			gVar := gSumSq/float64(len(gaps)) - gMean*gMean
			if gVar < 0 {
				gVar = 0
			}
			s.CV = math.Sqrt(gVar) / gMean
		}
	}

	var bytes float64
	for _, f := range tr.Frames {
		bytes += float64(f.Length)
	}
	if len(tr.Frames) > 0 {
		s.MeanFrameBytes = bytes / float64(len(tr.Frames))
	}
	s.DistinctPorts = len(tr.PortHistogram())
	return s
}
