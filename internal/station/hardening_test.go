package station

import (
	"testing"
	"time"

	"repro/internal/ap"
	"repro/internal/dot11"
	"repro/internal/fault"
	"repro/internal/medium"
	"repro/internal/sim"
)

// hardRig is rig with a configurable station Config (Addr/BSSID/Mode
// filled in) against a HIDE AP.
func hardRig(t *testing.T, cfg Config, ports []uint16) (*sim.Engine, *medium.Medium, *ap.AP, *Station) {
	t.Helper()
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 7)
	a := ap.New(eng, med, ap.Config{BSSID: bssid, SSID: "t", HIDE: true, DTIMPeriod: 2})
	cfg.Addr = dot11.MACAddr{2, 0, 0, 0, 0, 0x10}
	cfg.BSSID = bssid
	cfg.Mode = HIDE
	st := New(eng, med, cfg)
	for _, p := range ports {
		st.OpenPort(p)
	}
	aid, err := a.Associate(st.cfg.Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Join(aid); err != nil {
		t.Fatal(err)
	}
	return eng, med, a, st
}

func TestGiveUpAfterRetryBudget(t *testing.T) {
	eng, med, a, st := hardRig(t, Config{AckTimeout: 20 * time.Millisecond, MaxRetries: 2}, []uint16{53})
	med.SetFaultPlan(fault.Only(fault.Loss{P: 1}, dot11.KindACK))
	a.Start()
	eng.RunUntil(5 * time.Second)

	s := st.Stats()
	if s.PortMsgGivenUp == 0 {
		t.Fatal("retry budget exhausted but PortMsgGivenUp not surfaced")
	}
	if s.PortMsgsSent < 3 {
		t.Errorf("sent %d port messages, want initial + 2 retries", s.PortMsgsSent)
	}
	if !st.Suspended() {
		t.Error("station did not suspend after giving up")
	}
}

func TestBackoffGrowsExponentiallyWithJitter(t *testing.T) {
	st := New(sim.New(), medium.New(sim.New(), dot11.DefaultPHY(), 1),
		Config{Addr: dot11.MACAddr{2, 0, 0, 0, 0, 9}, BSSID: bssid, AckTimeout: 60 * time.Millisecond})
	// First attempt: exactly the base timeout, no randomness drawn.
	if got := st.ackWait(); got != 60*time.Millisecond {
		t.Fatalf("attempt 0 wait = %v, want base 60ms", got)
	}
	base := 60 * time.Millisecond
	for _, tc := range []struct {
		retries int
		mult    time.Duration
	}{{1, 2}, {2, 4}, {3, 8}, {4, 16}, {9, 16}} { // shift caps at 4
		st.retries = tc.retries
		d := base * tc.mult
		lo, hi := d-d/4, d+d/4
		for i := 0; i < 50; i++ {
			got := st.ackWait()
			if got < lo || got > hi {
				t.Fatalf("retries=%d wait %v outside [%v, %v]", tc.retries, got, lo, hi)
			}
		}
	}
}

func TestBackoffJitterDesynchronizesStations(t *testing.T) {
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 1)
	mk := func(last byte) *Station {
		s := New(eng, med, Config{
			Addr: dot11.MACAddr{2, 0, 0, 0, 0, last}, BSSID: bssid,
			AckTimeout: 60 * time.Millisecond, Seed: 42,
		})
		s.retries = 2
		return s
	}
	a, b := mk(1), mk(2)
	same := 0
	for i := 0; i < 20; i++ {
		if a.ackWait() == b.ackWait() {
			same++
		}
	}
	if same == 20 {
		t.Error("two stations with the same Config.Seed backed off in lockstep")
	}
}

func TestMissedBeaconFailSafe(t *testing.T) {
	eng, med, a, st := hardRig(t, Config{MissedBeaconFailSafe: true}, []uint16{5353})
	// Drop every beacon to the station once traffic starts; frames on
	// its open port still arrive and must be received via the fail-safe.
	med.SetFaultPlan(fault.Window{
		From:  150 * time.Millisecond,
		Inner: fault.To(st.Addr(), fault.Only(fault.Loss{P: 1}, dot11.KindBeacon)),
	})
	a.Start()
	for at := 300 * time.Millisecond; at < 2*time.Second; at += 400 * time.Millisecond {
		eng.MustScheduleAt(at, func(time.Duration) {
			a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)
		})
	}
	eng.RunUntil(3 * time.Second)

	s := st.Stats()
	if s.FailSafeBursts == 0 {
		t.Fatal("fail-safe never fired despite lost DTIM beacons")
	}
	if s.GroupUseful < 4 {
		t.Errorf("received %d useful frames, want at least 4", s.GroupUseful)
	}
}

func TestNoFailSafeWhenDisabled(t *testing.T) {
	eng, med, a, st := hardRig(t, Config{}, []uint16{5353})
	med.SetFaultPlan(fault.Window{
		From:  150 * time.Millisecond,
		Inner: fault.To(st.Addr(), fault.Only(fault.Loss{P: 1}, dot11.KindBeacon)),
	})
	a.Start()
	eng.MustScheduleAt(500*time.Millisecond, func(time.Duration) {
		a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)
	})
	eng.RunUntil(2 * time.Second)

	s := st.Stats()
	if s.FailSafeBursts != 0 {
		t.Errorf("fail-safe fired %d times while disabled", s.FailSafeBursts)
	}
	if s.GroupUseful != 0 {
		t.Errorf("station received %d frames without hearing a DTIM", s.GroupUseful)
	}
}

func TestFailSafeNoFalsePositiveOnCleanChannel(t *testing.T) {
	eng, _, a, st := hardRig(t, Config{MissedBeaconFailSafe: true}, []uint16{9999})
	a.Start()
	// Traffic only on a closed port: the BTIM bit stays clear and the
	// station must keep sleeping through it — overdue never triggers
	// because beacons arrive on schedule.
	for at := 300 * time.Millisecond; at < 2*time.Second; at += 250 * time.Millisecond {
		eng.MustScheduleAt(at, func(time.Duration) {
			a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)
		})
	}
	eng.RunUntil(3 * time.Second)

	s := st.Stats()
	if s.FailSafeBursts != 0 {
		t.Errorf("fail-safe fired %d times on a clean channel", s.FailSafeBursts)
	}
	if s.GroupReceived != 0 {
		t.Errorf("station received %d unwanted frames", s.GroupReceived)
	}
}

func TestPortRefreshAtDTIMCadence(t *testing.T) {
	eng, _, a, st := hardRig(t, Config{PortRefresh: 500 * time.Millisecond}, []uint16{53})
	a.Start()
	eng.RunUntil(3 * time.Second)

	s := st.Stats()
	if s.PortMsgRefreshes < 3 {
		t.Errorf("refreshes = %d over 3s with a 500ms cadence, want >= 3", s.PortMsgRefreshes)
	}
	// Refreshes ride heard beacons; the suspend machinery must not
	// have been disturbed (no extra wakeups from refreshing).
	if !st.Suspended() {
		t.Error("station not suspended between refreshes")
	}
}

func TestNoPortRefreshWhenDisabled(t *testing.T) {
	eng, _, a, st := hardRig(t, Config{}, []uint16{53})
	a.Start()
	eng.RunUntil(3 * time.Second)
	if got := st.Stats().PortMsgRefreshes; got != 0 {
		t.Errorf("refreshes = %d with PortRefresh disabled", got)
	}
}

func TestAPRestartTriggersResync(t *testing.T) {
	eng, _, a, st := hardRig(t, Config{}, []uint16{53})
	a.Start()
	eng.MustScheduleAt(time.Second, func(time.Duration) { a.Restart() })
	eng.RunUntil(3 * time.Second)

	s := st.Stats()
	if s.APRestartsSeen != 1 {
		t.Fatalf("APRestartsSeen = %d, want 1", s.APRestartsSeen)
	}
	// The station re-registered: its ports are back in the fresh table.
	if !a.Table().Listening(53, st.AID()) {
		t.Error("open port missing from the post-restart table")
	}
}

func TestCrashGoesSilent(t *testing.T) {
	eng, _, a, st := hardRig(t, Config{}, []uint16{5353})
	a.Start()
	eng.RunUntil(500 * time.Millisecond)
	beforeArrivals := len(st.Arrivals())
	before := st.Stats()

	st.Crash()
	if !st.Crashed() || !st.Suspended() {
		t.Fatal("crashed station not silent+suspended")
	}
	for at := 600 * time.Millisecond; at < 2*time.Second; at += 300 * time.Millisecond {
		eng.MustScheduleAt(at, func(time.Duration) {
			a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)
		})
	}
	eng.RunUntil(3 * time.Second)

	after := st.Stats()
	if len(st.Arrivals()) != beforeArrivals {
		t.Error("crashed station recorded arrivals")
	}
	if after.BeaconsHeard != before.BeaconsHeard || after.GroupReceived != before.GroupReceived {
		t.Error("crashed station processed traffic")
	}
	if after.PortMsgsSent != before.PortMsgsSent {
		t.Error("crashed station transmitted")
	}
	// Crash counts no suspend transition of its own beyond the state.
	if after.Suspends != before.Suspends {
		t.Errorf("Suspends moved from %d to %d across Crash", before.Suspends, after.Suspends)
	}
}

func TestCrashLeavesStaleTableEntry(t *testing.T) {
	eng, _, a, st := hardRig(t, Config{}, []uint16{5353})
	a.Start()
	eng.RunUntil(500 * time.Millisecond)
	st.Crash()
	eng.RunUntil(5 * time.Second)
	// No TTL configured: the stale entry persists — exactly the leak
	// ap.Config.PortTTL exists to bound.
	if !a.Table().Listening(5353, st.AID()) {
		t.Error("crashed client's entry vanished without a TTL sweep")
	}
}
