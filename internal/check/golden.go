package check

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// This file is the golden-file regression layer: every figure and
// table regeneration target is snapshotted as canonical JSON under
// testdata/golden/ and compared tolerance-aware on each test run. The
// snapshots are regenerated with
//
//	go test ./internal/check -run TestGolden -update
//
// which rewrites the files byte-identically when nothing changed (the
// marshalling is canonical: sorted keys, fixed indentation, trailing
// newline).

// GoldenRelTol is the relative tolerance for numeric comparisons
// against golden files. The pipeline is deterministic, so on one
// machine snapshots match exactly; the band absorbs cross-architecture
// floating-point variation (FMA contraction, libm differences) without
// masking real regressions.
const GoldenRelTol = 1e-9

// MarshalCanonical renders v as canonical golden-file JSON: two-space
// indentation, keys in struct order (encoding/json sorts map keys),
// and a trailing newline.
func MarshalCanonical(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteGolden writes the canonical form of v to path, creating parent
// directories as needed.
func WriteGolden(path string, v any) error {
	b, err := MarshalCanonical(v)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// CompareGolden compares the canonical form of v against the snapshot
// at path: numbers within relTol relative difference are equal, all
// other values must match exactly. Errors are annotated with the JSON
// path of the first mismatch.
func CompareGolden(path string, v any, relTol float64) error {
	want, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("golden: %w (run with -update to create it)", err)
	}
	got, err := MarshalCanonical(v)
	if err != nil {
		return err
	}
	return CompareJSON(got, want, relTol)
}

// CompareJSON compares two JSON documents with a relative tolerance on
// numbers. The first difference is reported with its JSON path.
func CompareJSON(got, want []byte, relTol float64) error {
	var g, w any
	if err := json.Unmarshal(got, &g); err != nil {
		return fmt.Errorf("golden: got side: %w", err)
	}
	if err := json.Unmarshal(want, &w); err != nil {
		return fmt.Errorf("golden: want side: %w", err)
	}
	return compareValue("$", g, w, relTol)
}

// compareValue recursively compares unmarshalled JSON values.
func compareValue(path string, got, want any, relTol float64) error {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			return fmt.Errorf("golden: %s: got %T, want object", path, got)
		}
		if len(g) != len(w) {
			return fmt.Errorf("golden: %s: got %d keys, want %d", path, len(g), len(w))
		}
		keys := make([]string, 0, len(w))
		for k := range w {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			gv, ok := g[k]
			if !ok {
				return fmt.Errorf("golden: %s: missing key %q", path, k)
			}
			if err := compareValue(path+"."+k, gv, w[k], relTol); err != nil {
				return err
			}
		}
		return nil
	case []any:
		g, ok := got.([]any)
		if !ok {
			return fmt.Errorf("golden: %s: got %T, want array", path, got)
		}
		if len(g) != len(w) {
			return fmt.Errorf("golden: %s: got %d elements, want %d", path, len(g), len(w))
		}
		for i := range w {
			if err := compareValue(path+"["+strconv.Itoa(i)+"]", g[i], w[i], relTol); err != nil {
				return err
			}
		}
		return nil
	case float64:
		g, ok := got.(float64)
		if !ok {
			return fmt.Errorf("golden: %s: got %T, want number", path, got)
		}
		if relDiff(g, w) > relTol {
			return fmt.Errorf("golden: %s: got %v, want %v (rel %v > %v)", path, g, w, relDiff(g, w), relTol)
		}
		return nil
	default:
		if got != want {
			return fmt.Errorf("golden: %s: got %v, want %v", path, got, want)
		}
		return nil
	}
}
