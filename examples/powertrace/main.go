// Powertrace: programmatic use of the power-state timeline — the kind
// of analysis a battery engineer runs on a wakeup report. It replays a
// trace under HIDE, reconstructs the host state timeline, and answers:
// how many wakeups, what caused them, how long was the longest sleep,
// and where did the energy go?
//
// Run with:
//
//	go run ./examples/powertrace
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro"
	"repro/internal/energy"
	"repro/internal/policy"
)

func main() {
	tr, err := hide.GenerateTrace(hide.WRL)
	if err != nil {
		log.Fatal(err)
	}
	useful := hide.TagUniform(tr, 0.10, 0x51de)

	p, err := policy.New(policy.HIDE)
	if err != nil {
		log.Fatal(err)
	}
	arrivals, err := p.Apply(tr, useful)
	if err != nil {
		log.Fatal(err)
	}
	cfg := energy.Config{Device: hide.GalaxyS4, Duration: tr.Duration, Overhead: energy.DefaultOverhead()}
	ivs, err := energy.StateTimeline(arrivals, cfg)
	if err != nil {
		log.Fatal(err)
	}
	b, err := energy.Compute(arrivals, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HIDE on %s over %v of %s traffic (10%% useful)\n\n",
		cfg.Device.Name, tr.Duration, tr.Name)

	// Wakeup census.
	var wakeups int
	var longestSleep, longestAwake energy.Interval
	for _, iv := range ivs {
		switch iv.Kind {
		case energy.StateResuming:
			wakeups++
		case energy.StateSuspended:
			if iv.Duration() > longestSleep.Duration() {
				longestSleep = iv
			}
		case energy.StateAwake:
			if iv.Duration() > longestAwake.Duration() {
				longestAwake = iv
			}
		}
	}
	fmt.Printf("wakeups: %d (%.1f/hour)\n", wakeups, float64(wakeups)/tr.Duration.Hours())
	fmt.Printf("longest sleep: %v (from %v)\n", longestSleep.Duration().Truncate(time.Millisecond), longestSleep.From.Truncate(time.Second))
	fmt.Printf("longest awake: %v (from %v)\n", longestAwake.Duration().Truncate(time.Millisecond), longestAwake.From.Truncate(time.Second))

	// Time budget by state.
	fmt.Println("\ntime by state:")
	for _, k := range []energy.StateKind{energy.StateSuspended, energy.StateAwake, energy.StateResuming, energy.StateSuspending} {
		d := energy.TimeInState(ivs, k)
		fmt.Printf("  %-11s %10v (%5.1f%%)\n", k, d.Truncate(time.Second), 100*float64(d)/float64(tr.Duration))
	}

	// Energy budget by component.
	eb, ef, est, ewl, eo := b.ComponentPowersW()
	fmt.Println("\nenergy by component:")
	type comp struct {
		name string
		mw   float64
	}
	comps := []comp{
		{"beacons (Eb)", eb * 1000},
		{"radio rx/idle (Ef)", ef * 1000},
		{"state transfers (Est)", est * 1000},
		{"wakelock idle (Ewl)", ewl * 1000},
		{"HIDE overhead (Eo)", eo * 1000},
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].mw > comps[j].mw })
	for _, c := range comps {
		fmt.Printf("  %-22s %6.1f mW\n", c.name, c.mw)
	}
	fmt.Printf("  %-22s %6.1f mW\n", "total", b.AvgPowerW()*1000)

	// What woke us: port census of useful frames.
	ports := map[uint16]int{}
	for i, f := range tr.Frames {
		if useful[i] {
			ports[f.DstPort]++
		}
	}
	fmt.Println("\nuseful frames by port (wakeup causes):")
	type pc struct {
		port uint16
		n    int
	}
	var pcs []pc
	for p, n := range ports {
		pcs = append(pcs, pc{p, n})
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i].n > pcs[j].n })
	for _, x := range pcs {
		fmt.Printf("  udp/%-5d %5d frames\n", x.port, x.n)
	}
}
