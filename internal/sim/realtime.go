package sim

import (
	"context"
	"time"
)

// RunRealtime drives the engine against the wall clock: virtual time 0
// is pinned to the moment of the call, and each queued event fires
// when its virtual timestamp comes due in wall time. External inputs
// (e.g. frames arriving on a real socket) are delivered through the
// inject channel; each injected function runs on the engine goroutine
// with the clock advanced to "now", so it can safely interact with
// engine-scheduled state — this is how the hided/hidec daemons marry
// socket I/O to the single-threaded protocol entities.
//
// RunRealtime returns when ctx is cancelled (ctx.Err()) or when the
// inject channel is closed (nil). It must not be called while another
// Run variant is active.
func (e *Engine) RunRealtime(ctx context.Context, inject <-chan Event) error {
	if e.running {
		panic("sim: RunRealtime called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()

	epoch := time.Now().Add(-e.now) // preserve an already-advanced clock
	vnow := func() time.Duration { return time.Since(epoch) }

	// catchUp dispatches everything due at the current wall instant.
	// It mirrors RunUntil but without the running-flag guard.
	catchUp := func() {
		limit := vnow()
		for {
			next, ok := e.peek()
			if !ok || next > limit {
				break
			}
			e.Step()
		}
		if limit > e.now {
			e.now = limit
		}
	}

	// One timer serves the whole loop: Stop/Reset instead of a fresh
	// time.Timer (and its runtime timer allocation) per iteration.
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	disarm := func() {
		if armed && !timer.Stop() {
			<-timer.C // fired between select and Stop: drain for the next Reset
		}
		armed = false
	}
	defer disarm()

	for {
		disarm()
		var timerC <-chan time.Time
		if next, ok := e.peek(); ok {
			delay := next - vnow()
			if delay < 0 {
				delay = 0
			}
			timer.Reset(delay)
			armed = true
			timerC = timer.C
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timerC:
			armed = false
			catchUp()
		case fn, ok := <-inject:
			if !ok {
				return nil
			}
			catchUp()
			fn(e.now)
		}
	}
}
