// Package daemon is the supervised lifecycle of the hided access
// point and the hidec client: config files with live reload (SIGHUP
// or POST /v1/reload), an HTTP control plane (internal/control),
// liveness-evicted peers, graceful drain on SIGTERM — stop accepting
// associations, disassociate every client with real frames, bounded
// by a drain deadline — and, client-side, a connection state machine
// (connecting → associated → degraded → reconnecting) with
// exponential backoff, resumable association, and per-operation
// timeouts on all airlink I/O.
//
// The daemon is glue, not protocol: all protocol state lives in the
// single-threaded engine entities (internal/ap, internal/station) and
// every touch goes through the engine's inject channel. The package
// is wall-clock by nature (socket deadlines, drain timers, HTTP) and
// is allowlisted as such by the determinism analyzer, the same way
// internal/cli is.
package daemon

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dot11"
	"repro/internal/trace"
)

// Duration is a time.Duration that JSON-decodes from "150ms"-style
// strings (or raw nanosecond numbers) and encodes back to the string
// form, so config files stay human-readable.
type Duration time.Duration

// MarshalJSON encodes the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or a nanosecond number.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	switch v := v.(type) {
	case float64:
		*d = Duration(time.Duration(v))
		return nil
	case string:
		parsed, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("daemon: bad duration %q: %w", v, err)
		}
		*d = Duration(parsed)
		return nil
	default:
		return fmt.Errorf("daemon: duration must be a string or number, got %T", v)
	}
}

// Config configures the hided daemon. The zero value plus normalize
// is a working local daemon; LoadConfig reads the same shape from a
// JSON file.
type Config struct {
	// Listen is the UDP address the virtual air is served on.
	Listen string `json:"listen,omitempty"`
	// Control is the TCP address of the HTTP control plane.
	Control string `json:"control,omitempty"`
	// SSID is the advertised network name.
	SSID string `json:"ssid,omitempty"`
	// BSSID is the AP MAC ("02:1d:e0:ff:00:01" when empty).
	BSSID string `json:"bssid,omitempty"`
	// DTIMPeriod is in beacons (default 3).
	DTIMPeriod int `json:"dtim_period,omitempty"`
	// BeaconInterval defaults to the 802.11 100 TU.
	BeaconInterval Duration `json:"beacon_interval,omitempty"`
	// Legacy disables the HIDE extensions (stock AP).
	Legacy bool `json:"legacy,omitempty"`
	// Scenario names the broadcast trace replayed on loop ("none"
	// disables; default Starbucks). Reloadable.
	Scenario string `json:"scenario,omitempty"`
	// PortTTL ages out stale Client UDP Port Table entries.
	PortTTL Duration `json:"port_ttl,omitempty"`
	// PingInterval is the peer-liveness sweep cadence (default 1s).
	// Reloadable.
	PingInterval Duration `json:"ping_interval,omitempty"`
	// MaxMissedPings evicts a peer after this many unanswered sweeps
	// (default 3). Reloadable.
	MaxMissedPings int `json:"max_missed_pings,omitempty"`
	// DrainDeadline bounds the SIGTERM graceful drain (default 5s).
	// Reloadable.
	DrainDeadline Duration `json:"drain_deadline,omitempty"`
	// StatsEvery is the stats-log cadence (0 disables). Reloadable.
	StatsEvery Duration `json:"stats_every,omitempty"`
	// Seed drives the trace generator and fault RNG defaults.
	Seed uint64 `json:"seed,omitempty"`
}

// normalized fills defaults.
func (c Config) normalized() Config {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:5600"
	}
	if c.Control == "" {
		c.Control = "127.0.0.1:5680"
	}
	if c.SSID == "" {
		c.SSID = "hide-net"
	}
	if c.BSSID == "" {
		c.BSSID = "02:1d:e0:ff:00:01"
	}
	if c.DTIMPeriod <= 0 {
		c.DTIMPeriod = 3
	}
	if c.Scenario == "" {
		c.Scenario = "Starbucks"
	}
	if c.PingInterval <= 0 {
		c.PingInterval = Duration(time.Second)
	}
	if c.MaxMissedPings <= 0 {
		c.MaxMissedPings = 3
	}
	if c.DrainDeadline <= 0 {
		c.DrainDeadline = Duration(5 * time.Second)
	}
	return c
}

// Validate checks the fields a typo would most likely corrupt.
func (c Config) Validate() error {
	if _, err := parseMAC(c.BSSID); err != nil {
		return err
	}
	if !strings.EqualFold(c.Scenario, "none") {
		if _, err := scenarioByName(c.Scenario); err != nil {
			return err
		}
	}
	return nil
}

// LoadConfig reads a JSON config file, rejecting unknown fields so a
// misspelled key fails loudly instead of silently keeping a default.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("daemon: reading config: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("daemon: parsing %s: %w", path, err)
	}
	c = c.normalized()
	if err := c.Validate(); err != nil {
		return Config{}, fmt.Errorf("daemon: %s: %w", path, err)
	}
	return c, nil
}

// diff compares a freshly loaded config against the running one and
// splits the changes into the live-reloadable subset and the fields
// that need a restart. Both slices list "field: old -> new" strings.
func (c Config) diff(next Config) (reloadable, restartOnly []string) {
	chg := func(name string, old, new any) string {
		return fmt.Sprintf("%s: %v -> %v", name, old, new)
	}
	if c.Scenario != next.Scenario {
		reloadable = append(reloadable, chg("scenario", c.Scenario, next.Scenario))
	}
	if c.PingInterval != next.PingInterval {
		reloadable = append(reloadable, chg("ping_interval", time.Duration(c.PingInterval), time.Duration(next.PingInterval)))
	}
	if c.MaxMissedPings != next.MaxMissedPings {
		reloadable = append(reloadable, chg("max_missed_pings", c.MaxMissedPings, next.MaxMissedPings))
	}
	if c.DrainDeadline != next.DrainDeadline {
		reloadable = append(reloadable, chg("drain_deadline", time.Duration(c.DrainDeadline), time.Duration(next.DrainDeadline)))
	}
	if c.StatsEvery != next.StatsEvery {
		reloadable = append(reloadable, chg("stats_every", time.Duration(c.StatsEvery), time.Duration(next.StatsEvery)))
	}
	if c.Listen != next.Listen {
		restartOnly = append(restartOnly, chg("listen", c.Listen, next.Listen))
	}
	if c.Control != next.Control {
		restartOnly = append(restartOnly, chg("control", c.Control, next.Control))
	}
	if c.SSID != next.SSID {
		restartOnly = append(restartOnly, chg("ssid", c.SSID, next.SSID))
	}
	if c.BSSID != next.BSSID {
		restartOnly = append(restartOnly, chg("bssid", c.BSSID, next.BSSID))
	}
	if c.DTIMPeriod != next.DTIMPeriod {
		restartOnly = append(restartOnly, chg("dtim_period", c.DTIMPeriod, next.DTIMPeriod))
	}
	if c.BeaconInterval != next.BeaconInterval {
		restartOnly = append(restartOnly, chg("beacon_interval", time.Duration(c.BeaconInterval), time.Duration(next.BeaconInterval)))
	}
	if c.Legacy != next.Legacy {
		restartOnly = append(restartOnly, chg("legacy", c.Legacy, next.Legacy))
	}
	if c.PortTTL != next.PortTTL {
		restartOnly = append(restartOnly, chg("port_ttl", time.Duration(c.PortTTL), time.Duration(next.PortTTL)))
	}
	if c.Seed != next.Seed {
		restartOnly = append(restartOnly, chg("seed", c.Seed, next.Seed))
	}
	return reloadable, restartOnly
}

// parseMAC parses a colon-separated MAC address.
func parseMAC(s string) (dot11.MACAddr, error) {
	var mac dot11.MACAddr
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return mac, fmt.Errorf("daemon: bad MAC %q", s)
	}
	for i, p := range parts {
		if len(p) != 2 {
			return mac, fmt.Errorf("daemon: bad MAC %q", s)
		}
		var b byte
		if _, err := fmt.Sscanf(p, "%02x", &b); err != nil {
			return mac, fmt.Errorf("daemon: bad MAC %q", s)
		}
		mac[i] = b
	}
	return mac, nil
}

// scenarioByName resolves a scenario name case-insensitively.
func scenarioByName(name string) (trace.Scenario, error) {
	for _, s := range trace.Scenarios {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("daemon: unknown scenario %q", name)
}
