package control

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Health is the /healthz answer.
type Health struct {
	// Status is "ok" while serving, "draining" during graceful
	// shutdown.
	Status string `json:"status"`
	// Draining mirrors Status for programmatic checks.
	Draining bool `json:"draining"`
	// Clients is the current association count.
	Clients int `json:"clients"`
	// UptimeMS is virtual milliseconds since daemon boot.
	UptimeMS int64 `json:"uptime_ms"`
}

// StationRow is one associated station as reported by /v1/stations.
type StationRow struct {
	AID             uint16   `json:"aid"`
	Addr            string   `json:"addr"`
	HIDECapable     bool     `json:"hide_capable"`
	PSMode          bool     `json:"ps_mode"`
	Members         int      `json:"members"`
	BufferedUnicast int      `json:"buffered_unicast"`
	Ports           []uint16 `json:"ports,omitempty"`
}

// PortTableRow is one Client UDP Port Table entry as reported by
// /v1/porttable.
type PortTableRow struct {
	AID           uint16   `json:"aid"`
	Ports         []uint16 `json:"ports"`
	RefreshedAtMS int64    `json:"refreshed_at_ms"`
}

// Backend is the daemon surface the control plane serves from. Every
// method is called on an HTTP handler goroutine; the daemon proxies
// reads and mutations onto its engine goroutine and answers within a
// bounded time or returns an error.
type Backend interface {
	// Health answers /healthz; it must stay cheap and non-blocking.
	Health() Health
	// Counters snapshots the daemon's live counters (AP stats, hub
	// stats, eviction counts) keyed by metric name.
	Counters() (map[string]int64, error)
	// Stations snapshots the association table in AID order.
	Stations() ([]StationRow, error)
	// PortTable snapshots the Client UDP Port Table in AID order.
	PortTable() ([]PortTableRow, error)
	// ApplyFault installs a compiled fault request on the live link: a
	// clear request removes the active plan.
	ApplyFault(req *FaultRequest) error
	// RestartAP power-cycles the AP entity (soft state wiped, TSF
	// reset) — the live equivalent of the chaos grid's restart.
	RestartAP() error
	// InjectGroup enqueues count broadcast frames to a UDP port.
	InjectGroup(port uint16, count int) error
	// Reload re-reads the config file and applies the reloadable
	// subset, returning a human-readable summary of what changed.
	Reload() (string, error)
}

// Server routes the control-plane endpoints to a Backend.
type Server struct {
	backend Backend
	mux     *http.ServeMux
}

// maxBodyBytes bounds control-plane request bodies.
const maxBodyBytes = 1 << 20

// NewServer builds the control plane for a backend.
func NewServer(b Backend) *Server {
	s := &Server{backend: b, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/counters", s.handleCounters)
	s.mux.HandleFunc("/v1/stations", s.handleStations)
	s.mux.HandleFunc("/v1/porttable", s.handlePortTable)
	s.mux.HandleFunc("/v1/fault", s.handleFault)
	s.mux.HandleFunc("/v1/restart", s.handleRestart)
	s.mux.HandleFunc("/v1/inject", s.handleInject)
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	return s
}

// Handler returns the control plane's http.Handler; the daemon owns
// the http.Server wrapping it.
func (s *Server) Handler() http.Handler { return s.mux }

// writeJSON answers with a JSON document.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//lint:ignore errdrop the client hung up; nothing to do about an encode-to-wire error
	_ = json.NewEncoder(w).Encode(v)
}

// writeError answers with {"error": ...}.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// readBody drains a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	//lint:ignore errdrop net/http closes request bodies itself; this close only releases the MaxBytesReader early
	defer r.Body.Close()
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("control: reading body: %w", err)
	}
	return data, nil
}

// requireMethod answers false (and writes the error) when the request
// method is not m.
func requireMethod(w http.ResponseWriter, r *http.Request, m string) bool {
	if r.Method != m {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("control: %s requires %s", r.URL.Path, m))
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, s.backend.Health())
}

// handleMetrics renders the counters in the Prometheus text
// exposition format, plus the hided_up gauge and drain state.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	counters, err := s.backend.Counters()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	h := s.backend.Health()
	var b strings.Builder
	b.WriteString("# HELP hided_up Whether the daemon is serving (1) or draining (0).\n")
	b.WriteString("# TYPE hided_up gauge\n")
	up := 1
	if h.Draining {
		up = 0
	}
	fmt.Fprintf(&b, "hided_up %d\n", up)
	b.WriteString("# HELP hided_clients Currently associated stations.\n")
	b.WriteString("# TYPE hided_clients gauge\n")
	fmt.Fprintf(&b, "hided_clients %d\n", h.Clients)
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		metric := "hided_" + name
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", metric, metric, counters[name])
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	//lint:ignore errdrop the scraper hung up; the next scrape retries
	_, _ = io.WriteString(w, b.String())
}

func (s *Server) handleCounters(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	counters, err := s.backend.Counters()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, counters)
}

func (s *Server) handleStations(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	rows, err := s.backend.Stations()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, rows)
}

func (s *Server) handlePortTable(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	rows, err := s.backend.PortTable()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, rows)
}

// handleFault validates and installs (or clears) a fault plan. The
// body is compiled before it touches the backend, so a malformed plan
// can never reach the live link half-built.
func (s *Server) handleFault(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	data, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req FaultRequest
	if err := decodeJSON(data, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.backend.ApplyFault(&req); err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true, "cleared": req.Clear})
}

func (s *Server) handleRestart(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if err := s.backend.RestartAP(); err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleInject(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	data, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req InjectRequest
	if err := decodeJSON(data, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Port == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("control: inject needs a nonzero port"))
		return
	}
	count := req.Count
	if count == 0 {
		count = 1
	}
	if count < 0 || count > 10000 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("control: inject count %d outside [1,10000]", count))
		return
	}
	if err := s.backend.InjectGroup(req.Port, count); err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "count": count})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	summary, err := s.backend.Reload()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "reloaded", "summary": summary})
}
