// Package fault is the deterministic fault-injection subsystem: a
// composable description of what an unreliable channel does to frame
// deliveries. The medium consults a Plan once per delivery and applies
// the returned verdict — drop, corrupt, or duplicate — so every
// protocol layer can be exercised against bursty loss, targeted
// classifier drops, and garbled frames without touching protocol code.
//
// All randomness flows from the single seeded sim.RNG the medium owns:
// a plan never keeps its own entropy source, so a run replays
// byte-identically from one uint64 seed. Plans with per-delivery
// randomness draw a fixed number of values per consultation regardless
// of outcome, keeping the stream stable under composition.
//
// Entity-level faults — a client that crashes without deregistering
// (station.Crash) and an AP power-cycle that wipes the Client UDP Port
// Table (ap.Restart) — mutate protocol state rather than deliveries,
// so they are scheduled as simulation events by the chaos harness
// (internal/check); their channel-visible footprint ("node goes deaf
// at t") is expressible here with To + Window + Loss.
package fault

import (
	"fmt"
	"time"

	"repro/internal/dot11"
	"repro/internal/sim"
)

// Delivery describes one pending frame delivery: the medium builds one
// per (frame, receiver) pair, so a broadcast frame is judged
// independently for every station — exactly how independent radios
// experience a shared channel. Plans must treat Raw as read-only; the
// medium applies corruption itself, to a private copy.
type Delivery struct {
	// Raw is the marshalled frame.
	Raw []byte
	// Kind is the frame's classification (beacon, port message, ACK, …).
	Kind dot11.FrameKind
	// Src is the transmitter's MAC address.
	Src dot11.MACAddr
	// Dst is the addressed receiver (the broadcast address for group
	// frames).
	Dst dot11.MACAddr
	// Rcv is the node this copy is being delivered to.
	Rcv dot11.MACAddr
	// At is the delivery's virtual time.
	At time.Duration
}

// Verdict is a plan's decision about one delivery. Drop wins over the
// other effects; Corrupt garbles the receiver's copy; Duplicate
// delivers the frame twice (as after a lost ACK at the MAC layer).
type Verdict struct {
	Drop      bool
	Corrupt   bool
	Duplicate bool
}

// Faulty reports whether the verdict perturbs the delivery at all.
func (v Verdict) Faulty() bool { return v.Drop || v.Corrupt || v.Duplicate }

// merge ORs two verdicts.
func (v Verdict) merge(o Verdict) Verdict {
	return Verdict{
		Drop:      v.Drop || o.Drop,
		Corrupt:   v.Corrupt || o.Corrupt,
		Duplicate: v.Duplicate || o.Duplicate,
	}
}

// Plan decides the fate of deliveries. Implementations may keep
// evolution state (channel models are stateful) but must source all
// randomness from the rng argument.
type Plan interface {
	Deliver(d Delivery, rng *sim.RNG) Verdict
}

// Loss drops each delivery independently with probability P — the
// medium's historical lossProb knob expressed as a Plan. It draws
// exactly one value per delivery, preserving byte-identity with runs
// recorded before the fault subsystem existed.
type Loss struct{ P float64 }

// Deliver implements Plan.
func (l Loss) Deliver(_ Delivery, rng *sim.RNG) Verdict {
	return Verdict{Drop: rng.Float64() < l.P}
}

// Corrupt garbles each delivery independently with probability P: the
// medium flips one byte of the receiver's copy, modelling a frame that
// passes the radio but fails semantic checks (the FCS abstraction here
// lets garbage reach the parser, which must stay robust to it).
type Corrupt struct{ P float64 }

// Deliver implements Plan.
func (c Corrupt) Deliver(_ Delivery, rng *sim.RNG) Verdict {
	return Verdict{Corrupt: rng.Float64() < c.P}
}

// Duplicate delivers each frame twice with probability P, the
// receive-side view of a MAC retransmission whose ACK was lost.
type Duplicate struct{ P float64 }

// Deliver implements Plan.
func (d Duplicate) Deliver(_ Delivery, rng *sim.RNG) Verdict {
	return Verdict{Duplicate: rng.Float64() < d.P}
}

// GilbertElliott is the classic two-state bursty-loss channel: a good
// state with light loss and a bad state with heavy loss, switching
// between them per delivery. It draws exactly two values per delivery
// (transition, then loss) regardless of state, so composed plans
// replay identically.
type GilbertElliott struct {
	pGoodBad float64 // P(good → bad) per delivery
	pBadGood float64 // P(bad → good) per delivery
	lossGood float64
	lossBad  float64
	bad      bool
}

// NewGilbertElliott validates the transition and per-state loss
// probabilities and returns the channel, starting in the good state.
func NewGilbertElliott(pGoodBad, pBadGood, lossGood, lossBad float64) (*GilbertElliott, error) {
	for _, p := range []float64{pGoodBad, pBadGood, lossGood, lossBad} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("fault: probability %v outside [0, 1]", p)
		}
	}
	return &GilbertElliott{pGoodBad: pGoodBad, pBadGood: pBadGood, lossGood: lossGood, lossBad: lossBad}, nil
}

// Deliver implements Plan.
func (g *GilbertElliott) Deliver(_ Delivery, rng *sim.RNG) Verdict {
	flip := g.pGoodBad
	if g.bad {
		flip = g.pBadGood
	}
	if rng.Float64() < flip {
		g.bad = !g.bad
	}
	loss := g.lossGood
	if g.bad {
		loss = g.lossBad
	}
	return Verdict{Drop: rng.Float64() < loss}
}

// only restricts a plan to specific frame kinds.
type only struct {
	inner Plan
	kinds map[dot11.FrameKind]bool
}

// Only restricts inner to deliveries of the listed frame kinds — the
// targeted classifier drops (beacons only, port messages only, ACKs
// only) that isolate one protocol mechanism at a time. Other
// deliveries pass untouched and consume no randomness.
func Only(inner Plan, kinds ...dot11.FrameKind) Plan {
	set := make(map[dot11.FrameKind]bool, len(kinds))
	for _, k := range kinds {
		set[k] = true
	}
	return only{inner: inner, kinds: set}
}

// Deliver implements Plan.
func (o only) Deliver(d Delivery, rng *sim.RNG) Verdict {
	if !o.kinds[d.Kind] {
		return Verdict{}
	}
	return o.inner.Deliver(d, rng)
}

// to restricts a plan to one receiver.
type to struct {
	rcv   dot11.MACAddr
	inner Plan
}

// To restricts inner to deliveries received by addr — per-station
// faults on a shared channel (one client behind an obstacle, one
// client's radio going deaf).
func To(addr dot11.MACAddr, inner Plan) Plan { return to{rcv: addr, inner: inner} }

// Deliver implements Plan.
func (t to) Deliver(d Delivery, rng *sim.RNG) Verdict {
	if d.Rcv != t.rcv {
		return Verdict{}
	}
	return t.inner.Deliver(d, rng)
}

// Window restricts Inner to deliveries in [From, To); a zero To leaves
// the window open-ended. The chaos harness windows every channel fault
// to end with the trace so post-recovery convergence can be asserted
// on a clean channel.
type Window struct {
	From  time.Duration
	To    time.Duration
	Inner Plan
}

// Deliver implements Plan.
func (w Window) Deliver(d Delivery, rng *sim.RNG) Verdict {
	if d.At < w.From || (w.To > 0 && d.At >= w.To) {
		return Verdict{}
	}
	return w.Inner.Deliver(d, rng)
}

// compose merges several plans.
type compose struct{ plans []Plan }

// Compose consults every plan on every delivery and ORs the verdicts.
// All plans are always consulted — even after one already voted to
// drop — so each plan's randomness consumption is independent of the
// others' decisions and a composed run replays identically.
func Compose(plans ...Plan) Plan { return compose{plans: plans} }

// Deliver implements Plan.
func (c compose) Deliver(d Delivery, rng *sim.RNG) Verdict {
	var v Verdict
	for _, p := range c.plans {
		v = v.merge(p.Deliver(d, rng))
	}
	return v
}

// Silence makes one node deaf from time from onward — the channel
// footprint of a crashed radio, composable with other plans.
func Silence(addr dot11.MACAddr, from time.Duration) Plan {
	return Window{From: from, Inner: To(addr, Loss{P: 1})}
}

// Recorder wraps a plan and tallies its verdicts so a harness can
// bound protocol damage by the faults actually injected ("no wanted
// broadcast lost beyond the faulted frame itself"). It adds no
// randomness of its own.
type Recorder struct {
	inner    Plan
	drops    map[dot11.FrameKind]int
	corrupts map[dot11.FrameKind]int
	dups     map[dot11.FrameKind]int
	dataRcv  map[dot11.MACAddr]int // data-frame drops+corruptions per receiver
	total    int
	last     time.Duration
}

// NewRecorder wraps inner.
func NewRecorder(inner Plan) *Recorder {
	return &Recorder{
		inner:    inner,
		drops:    make(map[dot11.FrameKind]int),
		corrupts: make(map[dot11.FrameKind]int),
		dups:     make(map[dot11.FrameKind]int),
		dataRcv:  make(map[dot11.MACAddr]int),
	}
}

// Deliver implements Plan.
func (r *Recorder) Deliver(d Delivery, rng *sim.RNG) Verdict {
	v := r.inner.Deliver(d, rng)
	if !v.Faulty() {
		return v
	}
	if v.Drop {
		r.drops[d.Kind]++
	}
	if v.Corrupt {
		r.corrupts[d.Kind]++
	}
	if v.Duplicate {
		r.dups[d.Kind]++
	}
	if d.Kind == dot11.KindData && (v.Drop || v.Corrupt) {
		r.dataRcv[d.Rcv]++
	}
	r.total++
	r.last = d.At
	return v
}

// Drops returns the dropped deliveries of one kind.
func (r *Recorder) Drops(k dot11.FrameKind) int { return r.drops[k] }

// Corrupts returns the corrupted deliveries of one kind.
func (r *Recorder) Corrupts(k dot11.FrameKind) int { return r.corrupts[k] }

// Duplicates returns the duplicated deliveries of one kind.
func (r *Recorder) Duplicates(k dot11.FrameKind) int { return r.dups[k] }

// DataFaults returns how many data-frame deliveries to rcv were
// dropped or corrupted — the per-receiver bound on legitimately lost
// wanted frames.
func (r *Recorder) DataFaults(rcv dot11.MACAddr) int { return r.dataRcv[rcv] }

// Total returns the number of faulted deliveries of any kind.
func (r *Recorder) Total() int { return r.total }

// LastFaultAt returns the virtual time of the most recent fault.
func (r *Recorder) LastFaultAt() time.Duration { return r.last }
