package dot11

import (
	"testing"
	"testing/quick"
)

func TestAssocRequestRoundTrip(t *testing.T) {
	req := &AssocRequest{
		Header:      MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr, Seq: 5 << 4},
		Capability:  0x0431,
		SSID:        "hide-net",
		HIDECapable: true,
		Ports:       []uint16{53, 5353, 17500},
	}
	raw, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if Classify(raw) != KindAssocRequest {
		t.Fatalf("Classify = %v", Classify(raw))
	}
	got, err := UnmarshalAssocRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.SSID != req.SSID || got.Capability != req.Capability {
		t.Errorf("fixed fields: %+v", got)
	}
	if !got.HIDECapable {
		t.Error("HIDE capability lost")
	}
	if len(got.Ports) != 3 || got.Ports[1] != 5353 {
		t.Errorf("ports = %v", got.Ports)
	}
}

func TestAssocRequestLegacy(t *testing.T) {
	req := &AssocRequest{
		Header: MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr},
		SSID:   "net",
	}
	raw, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalAssocRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.HIDECapable || got.Ports != nil {
		t.Errorf("legacy request decoded as HIDE: %+v", got)
	}
}

func TestAssocRequestEmptyPortSetStillHIDE(t *testing.T) {
	// A HIDE station with no open ports still declares capability via
	// a present, empty element.
	req := &AssocRequest{
		Header:      MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr},
		HIDECapable: true,
	}
	raw, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalAssocRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HIDECapable {
		t.Error("empty-port HIDE request decoded as legacy")
	}
	if len(got.Ports) != 0 {
		t.Errorf("ports = %v, want empty", got.Ports)
	}
}

func TestAssocResponseRoundTrip(t *testing.T) {
	resp := &AssocResponse{
		Header:        MACHeader{Addr1: c1Addr, Addr2: apAddr, Addr3: apAddr},
		Capability:    0x0401,
		Status:        StatusSuccess,
		AID:           1234,
		HIDESupported: true,
	}
	raw, err := resp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if Classify(raw) != KindAssocResponse {
		t.Fatalf("Classify = %v", Classify(raw))
	}
	got, err := UnmarshalAssocResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.AID != 1234 || got.Status != StatusSuccess || !got.HIDESupported {
		t.Errorf("round trip: %+v", got)
	}
}

func TestAssocResponseFailureStatus(t *testing.T) {
	resp := &AssocResponse{
		Header: MACHeader{Addr1: c1Addr, Addr2: apAddr, Addr3: apAddr},
		Status: StatusAPFull,
	}
	raw, err := resp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalAssocResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusAPFull || got.HIDESupported {
		t.Errorf("failure response: %+v", got)
	}
}

func TestAssocWrongTypeRejected(t *testing.T) {
	resp := &AssocResponse{Header: MACHeader{Addr1: c1Addr, Addr2: apAddr, Addr3: apAddr}}
	raw, err := resp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalAssocRequest(raw); err == nil {
		t.Error("UnmarshalAssocRequest accepted a response")
	}
	req := &AssocRequest{Header: MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr}}
	raw2, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalAssocResponse(raw2); err == nil {
		t.Error("UnmarshalAssocResponse accepted a request")
	}
}

func TestAssocRequestRoundTripProperty(t *testing.T) {
	f := func(cap uint16, ssid string, ports []uint16) bool {
		if len(ssid) > 32 {
			ssid = ssid[:32]
		}
		req := &AssocRequest{
			Header:      MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr},
			Capability:  cap,
			SSID:        ssid,
			HIDECapable: true,
			Ports:       ports,
		}
		raw, err := req.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalAssocRequest(raw)
		if err != nil {
			return false
		}
		if got.SSID != ssid || got.Capability != cap || len(got.Ports) != len(ports) {
			return false
		}
		for i := range ports {
			if got.Ports[i] != ports[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
