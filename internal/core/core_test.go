package core

import (
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/trace"
)

// suites caches the full evaluation per device (it is deterministic).
var suites = map[string]*Suite{}

func suiteFor(t *testing.T, dev energy.Profile) *Suite {
	t.Helper()
	if s, ok := suites[dev.Name]; ok {
		return s
	}
	s, err := RunSuite(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	suites[dev.Name] = s
	return s
}

func TestEvaluateFractionValidation(t *testing.T) {
	tr, err := trace.GenerateScenario(trace.Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateFraction(tr, -0.1, energy.NexusOne, policy.HIDE, Options{}); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := EvaluateFraction(tr, 1.5, energy.NexusOne, policy.HIDE, Options{}); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestClientSideLowerBoundNeverExceedsReceiveAll(t *testing.T) {
	// The sweep includes δ=τ (receive-all behaviour), so the client-side
	// lower bound is ≤ receive-all by construction — the paper's
	// "barely saves energy" is its equality case on heavy traces.
	for _, dev := range energy.Profiles {
		s := suiteFor(t, dev)
		for _, c := range s.Comparisons {
			ra := c.ReceiveAll.Breakdown.TotalJ()
			cs := c.ClientSide.Breakdown.TotalJ()
			if cs > ra*(1+1e-9) {
				t.Errorf("%s/%s: client-side LB %.1f J > receive-all %.1f J", c.Trace, dev.Name, cs, ra)
			}
		}
	}
}

func TestHIDEBeatsBothSolutions(t *testing.T) {
	for _, dev := range energy.Profiles {
		s := suiteFor(t, dev)
		for _, c := range s.Comparisons {
			hd := c.HIDE[0].Breakdown.TotalJ() // 10% useful
			if hd >= c.ClientSide.Breakdown.TotalJ() {
				t.Errorf("%s/%s: HIDE:10%% %.1f J >= client-side %.1f J",
					c.Trace, dev.Name, hd, c.ClientSide.Breakdown.TotalJ())
			}
			if hd >= c.ReceiveAll.Breakdown.TotalJ() {
				t.Errorf("%s/%s: HIDE:10%% %.1f J >= receive-all %.1f J",
					c.Trace, dev.Name, hd, c.ReceiveAll.Breakdown.TotalJ())
			}
		}
	}
}

func TestHIDESavingsGrowAsUsefulShrinks(t *testing.T) {
	// Figures 7-8: the HIDE bars shrink monotonically from 10% to 2%
	// useful (same seed → nested-ish sets; allow a 2% tolerance for
	// tagging noise).
	for _, dev := range energy.Profiles {
		s := suiteFor(t, dev)
		for _, c := range s.Comparisons {
			for i := 1; i < len(c.HIDE); i++ {
				prev := c.HIDE[i-1].Breakdown.TotalJ()
				cur := c.HIDE[i].Breakdown.TotalJ()
				if cur > prev*1.02 {
					t.Errorf("%s/%s: HIDE energy rose from %.1f J (%.0f%%) to %.1f J (%.0f%%)",
						c.Trace, dev.Name, prev, 100*c.HIDE[i-1].UsefulFraction, cur, 100*c.HIDE[i].UsefulFraction)
				}
			}
		}
	}
}

func TestHeadlineSavingsRanges(t *testing.T) {
	// Paper: HIDE:10% saves 34-75% (Nexus One) and 18-78% (Galaxy S4);
	// HIDE:2% saves 71-82% / 62-83%. The simulator reproduces the shape,
	// so assert generous bands around those ranges.
	cases := []struct {
		dev          energy.Profile
		idx          int // index into UsefulFractions
		loMin, hiMax float64
	}{
		{energy.NexusOne, 0, 0.30, 0.80}, // HIDE:10%
		{energy.NexusOne, 4, 0.65, 0.90}, // HIDE:2%
		{energy.GalaxyS4, 0, 0.15, 0.80},
		{energy.GalaxyS4, 4, 0.60, 0.90},
	}
	for _, c := range cases {
		s := suiteFor(t, c.dev)
		lo, hi := s.SavingsRange(c.idx)
		if lo < c.loMin {
			t.Errorf("%s @%v%%: min saving %.1f%% below band %v%%",
				c.dev.Name, 100*UsefulFractions[c.idx], lo*100, c.loMin*100)
		}
		if hi > c.hiMax {
			t.Errorf("%s @%v%%: max saving %.1f%% above band %v%%",
				c.dev.Name, 100*UsefulFractions[c.idx], hi*100, c.hiMax*100)
		}
		if lo >= hi {
			t.Errorf("%s @%v%%: degenerate savings range [%v, %v]",
				c.dev.Name, 100*UsefulFractions[c.idx], lo, hi)
		}
	}
}

func TestSuspendFractionsShape(t *testing.T) {
	// Figure 9: on the heavy traces (Classroom, WML) receive-all and
	// client-side suspend <20% of the time while HIDE:2% suspends most
	// of the time; HIDE:10% ≥ client-side ≥ receive-all everywhere.
	s := suiteFor(t, energy.NexusOne)
	heavy := map[string]bool{"Classroom": true, "WML": true}
	for _, row := range s.Suspend {
		if heavy[row.Trace] {
			if row.ReceiveAll > 0.20 {
				t.Errorf("%s: receive-all suspend %.2f > 0.20", row.Trace, row.ReceiveAll)
			}
			if row.ClientSide > 0.20 {
				t.Errorf("%s: client-side suspend %.2f > 0.20", row.Trace, row.ClientSide)
			}
			if row.HIDE2 < 0.60 {
				t.Errorf("%s: HIDE:2%% suspend %.2f < 0.60", row.Trace, row.HIDE2)
			}
		}
		if row.HIDE2 < row.HIDE10 {
			t.Errorf("%s: HIDE:2%% suspends less than HIDE:10%%", row.Trace)
		}
		if row.HIDE10 < row.ClientSide-1e-9 {
			t.Errorf("%s: HIDE:10%% suspend %.2f < client-side %.2f", row.Trace, row.HIDE10, row.ClientSide)
		}
		if row.ClientSide < row.ReceiveAll-1e-9 {
			t.Errorf("%s: client-side suspend %.2f < receive-all %.2f", row.Trace, row.ClientSide, row.ReceiveAll)
		}
	}
}

func TestOverheadNegligible(t *testing.T) {
	// The paper's third observation on Figures 7-8: the HIDE overhead
	// component (red) is negligible — well under 5% of HIDE's total.
	for _, dev := range energy.Profiles {
		s := suiteFor(t, dev)
		for _, c := range s.Comparisons {
			for _, h := range c.HIDE {
				if frac := h.Breakdown.EoJ / h.Breakdown.TotalJ(); frac > 0.05 {
					t.Errorf("%s/%s @%.0f%%: overhead fraction %.3f > 0.05",
						c.Trace, dev.Name, h.UsefulFraction*100, frac)
				}
			}
		}
	}
}

func TestEvaluateResultMetadata(t *testing.T) {
	tr, err := trace.GenerateScenario(trace.WRL)
	if err != nil {
		t.Fatal(err)
	}
	r, err := EvaluateFraction(tr, 0.10, energy.GalaxyS4, policy.HIDE, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace != "WRL" || r.Device != "Galaxy S4" || r.Policy != policy.HIDE {
		t.Errorf("metadata wrong: %+v", r)
	}
	if r.UsefulFraction < 0.08 || r.UsefulFraction > 0.12 {
		t.Errorf("useful fraction %v far from 0.10", r.UsefulFraction)
	}
	if r.Breakdown.EoJ == 0 {
		t.Error("HIDE result has zero overhead energy")
	}
	if r.AvgPowerMW() <= 0 {
		t.Error("non-positive average power")
	}
}

func TestClientSideSweepPicksCheapWakelockOnLightTrace(t *testing.T) {
	// On the lightest trace the sweep should pick a short driver
	// wakelock (dropping quickly wins when gaps are long), not τ.
	tr, err := trace.GenerateScenario(trace.Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	r, err := EvaluateFraction(tr, 0.10, energy.NexusOne, policy.ClientSide, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.DriverWakelock >= time.Second {
		t.Errorf("sweep picked δ=%v on Starbucks; expected a short wakelock", r.DriverWakelock)
	}
}

func TestDeterminism(t *testing.T) {
	tr, err := trace.GenerateScenario(trace.CSDept)
	if err != nil {
		t.Fatal(err)
	}
	a, err := EvaluateFraction(tr, 0.10, energy.NexusOne, policy.HIDE, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateFraction(tr, 0.10, energy.NexusOne, policy.HIDE, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Breakdown != b.Breakdown {
		t.Error("same inputs produced different breakdowns")
	}
}

func TestSeedSweepRobustness(t *testing.T) {
	// The headline savings must hold across tagging seeds, with small
	// spread: HIDE's win is a property of the system, not of one seed.
	for _, sc := range []trace.Scenario{trace.Starbucks, trace.WML} {
		tr, err := trace.GenerateScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := SweepSeeds(tr, energy.NexusOne, 0.10, DefaultSweepSeeds)
		if err != nil {
			t.Fatal(err)
		}
		if sw.Seeds != len(DefaultSweepSeeds) {
			t.Fatalf("seeds = %d", sw.Seeds)
		}
		if sw.MinSaving <= 0.2 {
			t.Errorf("%s: min saving %.3f across seeds; headline is fragile", sc, sw.MinSaving)
		}
		if sw.StdDev > 0.05 {
			t.Errorf("%s: saving stddev %.3f across seeds; too seed-sensitive", sc, sw.StdDev)
		}
		if sw.MinSaving > sw.MeanSaving || sw.MeanSaving > sw.MaxSaving {
			t.Errorf("%s: inconsistent aggregate: %+v", sc, sw)
		}
	}
}

func TestSweepSeedsEmpty(t *testing.T) {
	tr, err := trace.GenerateScenario(trace.Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := SweepSeeds(tr, energy.NexusOne, 0.10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Seeds != 0 || sw.MeanSaving != 0 {
		t.Errorf("empty sweep: %+v", sw)
	}
}

func TestScaleClients(t *testing.T) {
	pts, err := DefaultScaleClients(energy.NexusOne)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// BTIM grows (weakly) with population: more AIDs, wider bitmap.
	if pts[len(pts)-1].BTIMBytesPerBeacon < pts[0].BTIMBytesPerBeacon {
		t.Errorf("BTIM shrank with population: %+v", pts)
	}
	// Port message load grows with population.
	if pts[len(pts)-1].PortMsgsReceived <= pts[0].PortMsgsReceived {
		t.Errorf("port message count did not grow: %+v", pts)
	}
	// Per-station energy stays bounded (stations split the traffic, so
	// the mean must not blow up with N).
	if pts[len(pts)-1].MeanStationJ > pts[0].MeanStationJ*3 {
		t.Errorf("per-station energy exploded with N: %+v", pts)
	}
	for _, pt := range pts {
		if pt.MeanStationJ <= 0 {
			t.Errorf("N=%d: non-positive mean energy", pt.N)
		}
	}
}

func TestScaleClientsValidation(t *testing.T) {
	tr, err := trace.GenerateScenario(trace.Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScaleClients(tr, energy.NexusOne, []int{0}); err == nil {
		t.Error("population 0 accepted")
	}
	empty := &trace.Trace{Name: "e", Duration: time.Minute}
	if _, err := ScaleClients(empty, energy.NexusOne, []int{1}); err == nil {
		t.Error("portless trace accepted")
	}
}
