// Package lint is the repo-native static-analysis framework behind
// cmd/hidelint. The repo carries guarantees that ordinary tests only
// probe pointwise — byte-identical engine output at any worker count,
// a differential oracle whose two energy implementations must agree,
// an exit-130 SIGINT contract across every binary — and those
// guarantees are easy to break silently with one stray time.Now, an
// unsorted map iteration, or a hand-typed protocol literal. The
// analyzers in this package turn the repo's conventions into
// machine-checked rules enforced on every commit.
//
// The framework is deliberately small and stdlib-only (go/parser,
// go/ast, go/types with the source importer): an Analyzer has a name,
// a doc string, and a Run function over a type-checked package; it
// reports Diagnostics with file:line:col positions. A finding can be
// suppressed for one line with
//
//	//lint:ignore <check> <reason>
//
// either trailing the offending line or on its own line immediately
// above. The reason is mandatory — a directive without one is itself
// reported, so every suppression documents why the rule does not
// apply.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named static check over a type-checked package.
type Analyzer struct {
	// Name identifies the check in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of what the check enforces.
	Doc string
	// Run analyzes a package and reports findings through the pass.
	Run func(*Pass) error
}

// All returns the registered analyzers in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		CtxFirst,
		APIShim,
		ExitPath,
		ElemConst,
		ErrDrop,
		FrameMut,
		RNGDraw,
		GoJoin,
		PoolBalance,
	}
}

// ByName returns the analyzers matching the comma-separated name list
// (every analyzer when names is empty).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// A Diagnostic is one finding, positioned for vet-style output.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String formats the diagnostic the way go vet does, with the check
// name appended for ignore directives to reference.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Check)
}

// A Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Path is the package import path ("repro/internal/sim").
	Path string
	// ModulePath is the module prefix ("repro"), so analyzers scope
	// themselves by module-relative paths.
	ModulePath string
	Pkg        *types.Package
	TypesInfo  *types.Info

	ignores map[string][]ignoreDirective // file name -> directives
	diags   *[]Diagnostic
}

// RelPath returns the package path relative to the module root
// ("internal/sim"; "" for the root package).
func (p *Pass) RelPath() string {
	if p.Path == p.ModulePath {
		return ""
	}
	return strings.TrimPrefix(p.Path, p.ModulePath+"/")
}

// Reportf records a finding at pos unless an ignore directive for this
// analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, ig := range p.ignores[position.Filename] {
		if ig.check == p.Analyzer.Name && ig.line == position.Line && ig.reason != "" {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //lint:ignore comment, resolved to the
// source line it suppresses.
type ignoreDirective struct {
	pos    token.Position // of the directive itself
	line   int            // line the directive applies to
	check  string
	reason string
}

// ignorePrefix introduces a suppression comment.
const ignorePrefix = "//lint:ignore"

// parseIgnores collects the ignore directives of a file. A directive
// trailing code applies to its own line; a directive alone on a line
// applies to the next line.
func parseIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	// Lines that hold a non-comment token, to classify directives as
	// trailing or standalone.
	codeLines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.Comment); ok {
			return false
		}
		if _, ok := n.(*ast.CommentGroup); ok {
			return false
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		return true
	})
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			check, reason, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			line := pos.Line
			if !codeLines[line] {
				line++ // standalone comment suppresses the next line
			}
			out = append(out, ignoreDirective{
				pos:    pos,
				line:   line,
				check:  check,
				reason: strings.TrimSpace(reason),
			})
		}
	}
	return out
}

// RunAnalyzers runs every analyzer over every package and returns the
// surviving findings sorted by position. Ignore directives missing a
// reason are themselves reported: a suppression must say why.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := make(map[string][]ignoreDirective)
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			ignores[name] = parseIgnores(pkg.Fset, f)
		}
		for _, dirs := range ignores {
			for _, d := range dirs {
				if d.check == "" || d.reason == "" {
					diags = append(diags, Diagnostic{
						Pos:     d.pos,
						Check:   "ignore",
						Message: "//lint:ignore needs a check name and a justification: //lint:ignore <check> <reason>",
					})
				}
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Path:       pkg.Path,
				ModulePath: pkg.ModulePath,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				ignores:    ignores,
				diags:      &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags, nil
}

// funcObj resolves a call's callee to its *types.Func (package
// functions and methods; nil for builtins, conversions, and func
// values). Shared by several analyzers.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// isPkgFunc reports whether f is the package-level function path.name
// (not a method).
func isPkgFunc(f *types.Func, path, name string) bool {
	if f == nil || f.Pkg() == nil || f.Name() != name || f.Pkg().Path() != path {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type()

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
