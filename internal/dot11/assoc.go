package dot11

import "fmt"

// Association management frames. HIDE piggybacks on the standard
// association exchange: a HIDE-capable station includes an Open UDP
// Ports element in its association request, which both declares BTIM
// support and seeds the AP's Client UDP Port Table before the first
// suspend. Legacy stations omit the element and get standard
// treatment.

// Management subtypes for the association exchange.
const (
	SubtypeAssocRequest  uint8 = 0b0000
	SubtypeAssocResponse uint8 = 0b0001
)

// Association status codes (802.11 table 8-37 subset).
const (
	StatusSuccess         uint16 = 0
	StatusUnspecifiedFail uint16 = 1
	StatusAPFull          uint16 = 17
)

// AssocRequest is an association request. Ports being non-nil marks
// the station HIDE-capable (a zero-length open set is expressed as a
// present, empty element).
type AssocRequest struct {
	Header     MACHeader
	Capability uint16
	SSID       string
	// Ports is the initial open UDP port set; nil means the station is
	// a legacy (non-HIDE) client.
	Ports []uint16
	// HIDECapable marks the station as understanding BTIM elements.
	// Set implicitly when Ports is non-nil.
	HIDECapable bool
}

// assocReqFixedLen is capability (2) + listen interval (2).
const assocReqFixedLen = 4

// Marshal encodes the association request.
func (r *AssocRequest) Marshal() ([]byte, error) {
	hdr := r.Header
	hdr.FC.Type = TypeManagement
	hdr.FC.Subtype = SubtypeAssocRequest
	out := make([]byte, MACHeaderLen+assocReqFixedLen, MACHeaderLen+assocReqFixedLen+32)
	hdr.marshalInto(out)
	putUint16(out[MACHeaderLen:], r.Capability)
	var err error
	if out, err = (Element{ID: ElementIDSSID, Body: []byte(r.SSID)}).AppendTo(out); err != nil {
		return nil, err
	}
	if r.HIDECapable || r.Ports != nil {
		ports := r.Ports
		for {
			n := len(ports)
			if n > MaxPortsPerElement {
				n = MaxPortsPerElement
			}
			e, err := OpenUDPPorts{Ports: ports[:n]}.Element()
			if err != nil {
				return nil, err
			}
			if out, err = e.AppendTo(out); err != nil {
				return nil, err
			}
			ports = ports[n:]
			if len(ports) == 0 {
				break
			}
		}
	}
	return out, nil
}

// UnmarshalAssocRequest decodes an association request.
func UnmarshalAssocRequest(raw []byte) (*AssocRequest, error) {
	hdr, err := unmarshalMACHeader(raw)
	if err != nil {
		return nil, err
	}
	if hdr.FC.Type != TypeManagement || hdr.FC.Subtype != SubtypeAssocRequest {
		return nil, fmt.Errorf("%w: %v/%d, want assoc request", ErrBadFrameType, hdr.FC.Type, hdr.FC.Subtype)
	}
	if len(raw) < MACHeaderLen+assocReqFixedLen {
		return nil, fmt.Errorf("%w: %d bytes for assoc request", ErrShortFrame, len(raw))
	}
	r := &AssocRequest{Header: hdr, Capability: getUint16(raw[MACHeaderLen:])}
	elems, err := ParseElements(raw[MACHeaderLen+assocReqFixedLen:])
	if err != nil {
		return nil, err
	}
	for _, e := range elems {
		switch e.ID {
		case ElementIDSSID:
			r.SSID = string(e.Body)
		case ElementIDOpenUDPPorts:
			o, err := ParseOpenUDPPorts(e)
			if err != nil {
				return nil, err
			}
			r.HIDECapable = true
			if r.Ports == nil {
				r.Ports = []uint16{}
			}
			r.Ports = append(r.Ports, o.Ports...)
		}
	}
	return r, nil
}

// AssocResponse is an association response.
type AssocResponse struct {
	Header     MACHeader
	Capability uint16
	Status     uint16
	AID        AID
	// HIDESupported tells the station the AP will send BTIM elements.
	HIDESupported bool
}

// assocRespFixedLen is capability (2) + status (2) + AID (2).
const assocRespFixedLen = 6

// hideSupportElementID flags AP-side HIDE support in the response.
const hideSupportElementID uint8 = 202

// Marshal encodes the association response.
func (r *AssocResponse) Marshal() ([]byte, error) {
	hdr := r.Header
	hdr.FC.Type = TypeManagement
	hdr.FC.Subtype = SubtypeAssocResponse
	out := make([]byte, MACHeaderLen+assocRespFixedLen, MACHeaderLen+assocRespFixedLen+4)
	hdr.marshalInto(out)
	p := out[MACHeaderLen:]
	putUint16(p, r.Capability)
	putUint16(p[2:], r.Status)
	putUint16(p[4:], uint16(r.AID)|0xc000)
	if r.HIDESupported {
		var err error
		if out, err = (Element{ID: hideSupportElementID}).AppendTo(out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// UnmarshalAssocResponse decodes an association response.
func UnmarshalAssocResponse(raw []byte) (*AssocResponse, error) {
	hdr, err := unmarshalMACHeader(raw)
	if err != nil {
		return nil, err
	}
	if hdr.FC.Type != TypeManagement || hdr.FC.Subtype != SubtypeAssocResponse {
		return nil, fmt.Errorf("%w: %v/%d, want assoc response", ErrBadFrameType, hdr.FC.Type, hdr.FC.Subtype)
	}
	if len(raw) < MACHeaderLen+assocRespFixedLen {
		return nil, fmt.Errorf("%w: %d bytes for assoc response", ErrShortFrame, len(raw))
	}
	p := raw[MACHeaderLen:]
	r := &AssocResponse{
		Header:     hdr,
		Capability: getUint16(p),
		Status:     getUint16(p[2:]),
		AID:        AID(getUint16(p[4:]) &^ 0xc000),
	}
	elems, err := ParseElements(p[assocRespFixedLen:])
	if err != nil {
		return nil, err
	}
	if _, ok := FindElement(elems, hideSupportElementID); ok {
		r.HIDESupported = true
	}
	return r, nil
}
