// Package fixture is the rngdraw canary: a roam-style decision that
// draws an extra value on one branch only. The canary test asserts
// exactly ONE diagnostic, at the marked line.
package fixture

import "repro/internal/sim"

// PickTarget tosses a roam coin, then draws the target shard only for
// roamers — the stream position after the call now depends on the
// toss in a way the sibling branch never compensates.
func PickTarget(rng *sim.RNG, shards int) int {
	tgt := -1
	if rng.Float64() < 0.5 { // CANARY: then-branch draws 1, else-branch draws 0
		tgt = int(rng.Float64() * float64(shards))
	}
	return tgt
}
