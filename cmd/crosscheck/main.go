// Command crosscheck runs the differential oracle: every (policy ×
// scenario × device × seed) cell is priced by both the analytic
// Section IV energy model and the frame-level protocol simulation, and
// the per-component divergences are checked against the declared
// tolerance bands. It prints the worst-divergence table and exits
// non-zero if any cell disagrees or violates a runtime invariant.
//
// The (scenario × seed × policy) protocol units fan out over a worker
// pool (-parallel/-j, default GOMAXPROCS); the cell results are
// byte-identical to a sequential run. Ctrl-C cancels the grid.
//
// Usage:
//
//	crosscheck [-duration 45m] [-seeds 3] [-useful 0.1] [-invariants] [-parallel N] [-v]
//	crosscheck -fault <scenario,...|all|list> [-duration 60s] [-parallel N]
//
// The default duration of 0 keeps the paper's full capture durations
// (30-60 min of virtual time per trace); -duration shortens the traces
// for quick runs.
//
// With -fault, crosscheck runs the chaos grid instead: each selected
// fault scenario runs against the trace grid twice per seed, checking
// runtime invariants, fail-safe recovery, and same-seed determinism.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/cli"
)

func main() {
	duration := flag.Duration("duration", 0, "truncate traces to this virtual duration (0 = paper durations)")
	seeds := flag.Int("seeds", 3, "number of generator-seed perturbations per scenario")
	useful := flag.Float64("useful", 0.10, "target useful-traffic fraction (port-derived)")
	invariants := flag.Bool("invariants", true, "attach runtime invariant checks to every protocol run")
	faultNames := flag.String("fault", "", "run the chaos fault grid instead: scenario name(s), \"all\", or \"list\"")
	workers := cli.WorkersFlag()
	verbose := flag.Bool("v", false, "print every cell, not just the summary")
	flag.Parse()

	if *faultNames != "" {
		runFaultGrid(*faultNames, *duration, *workers)
		return
	}
	if *seeds < 1 {
		cli.Usagef("crosscheck", "-seeds must be at least 1")
	}
	if *duration < 0 {
		cli.Usagef("crosscheck", "-duration must not be negative")
	}
	if *useful <= 0 || *useful > 1 {
		cli.Usagef("crosscheck", "-useful must be in (0, 1]")
	}
	m := check.DefaultMatrix()
	m.Seeds = m.Seeds[:0]
	for s := 0; s < *seeds; s++ {
		m.Seeds = append(m.Seeds, uint64(s))
	}
	m.Config = check.OracleConfig{
		Duration:        *duration,
		UsefulTarget:    *useful,
		CheckInvariants: *invariants,
		Workers:         *workers,
	}

	ctx, stop := cli.SignalContext()
	defer stop()
	start := time.Now() //lint:ignore determinism wall-clock elapsed-time reporting, not simulation state
	res, err := m.RunContext(ctx)
	if err != nil {
		cli.Exit("crosscheck", err)
	}
	if *verbose {
		for _, c := range res.Results {
			status := ""
			if !c.OK() {
				status = "  <- cell FAILED"
			}
			fmt.Printf("%-45s worst %s%s\n", c.Cell, c.Worst(), status)
		}
	}
	fmt.Print(res.Report())
	//lint:ignore determinism wall-clock elapsed-time reporting, not simulation state
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	if err := res.Err(); err != nil {
		cli.Exit("crosscheck", err)
	}
}

// runFaultGrid runs the chaos grid for the named scenarios and exits
// non-zero on any invariant, recovery, or determinism failure.
func runFaultGrid(names string, duration time.Duration, workers int) {
	if names == "list" {
		for _, sc := range check.DefaultChaosScenarios() {
			fmt.Printf("%-14s %s\n", sc.Name, sc.Note)
		}
		return
	}
	scenarios, err := check.ScenariosByName(names)
	if err != nil {
		cli.Usagef("crosscheck", "%v", err)
	}
	ctx, stop := cli.SignalContext()
	defer stop()
	start := time.Now() //lint:ignore determinism wall-clock elapsed-time reporting, not simulation state
	results, err := check.RunChaosGrid(ctx, check.ChaosConfig{
		Scenarios: scenarios,
		Duration:  duration,
		Workers:   workers,
	})
	if err != nil {
		cli.Exit("crosscheck", err)
	}
	fmt.Print(check.ChaosReport(results))
	//lint:ignore determinism wall-clock elapsed-time reporting, not simulation state
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	if err := check.ChaosErr(results); err != nil {
		cli.Exit("crosscheck", err)
	}
}
