// Package fixture exercises the apishim analyzer. The test harness
// analyzes it as the module root, where the public-surface convention
// applies: Context variants are canonical, legacy names are Deprecated
// one-line shims.
package fixture

import "context"

// RunContext is the canonical context-first entry point.
func RunContext(ctx context.Context, n int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return n, nil
}

// Run is the legacy entry point.
//
// Deprecated: use RunContext.
func Run(n int) (int, error) {
	return RunContext(context.Background(), n)
}

// RunOptions is the legacy options-bearing entry point.
//
// Deprecated: use RunContext.
func RunOptions(n int) (int, error) {
	return RunContext(context.Background(), n)
}

// SweepContext is the canonical variant Sweep fails to defer to.
func SweepContext(ctx context.Context, n int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return 2 * n, nil
}

// Sweep shadows SweepContext without the Deprecated marker — a new
// non-context variant sneaking into the surface.
func Sweep(n int) (int, error) { // want `exported Sweep shadows SweepContext but is not marked Deprecated:`
	return SweepContext(context.Background(), n)
}

// WalkContext is the canonical variant Walk drifts from.
func WalkContext(ctx context.Context, n int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return n + 1, nil
}

// Walk is marked deprecated but re-implements the logic instead of
// delegating, so the two copies can drift.
//
// Deprecated: use WalkContext.
func Walk(n int) (int, error) { // want `deprecated Walk must be a one-line delegation to WalkContext`
	if n < 0 {
		return 0, nil
	}
	return n + 1, nil
}

// Summarize has no Context variant: an ordinary synchronous helper,
// exempt from the convention.
func Summarize(n int) int { return n * n }
