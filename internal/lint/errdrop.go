package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop forbids silently discarding errors. An unchecked error in
// the trace writer or the network layer turns a short write into a
// corrupt experiment input, and the cross-validation harness can only
// vouch for runs whose I/O actually happened. Discards must either be
// handled or carry a //lint:ignore errdrop justification.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "non-test code may not discard an error result via _ or a bare call " +
		"without a //lint:ignore errdrop justification (fmt printing and in-memory " +
		"buffer writes are exempt)",
	Run: runErrDrop,
}

func runErrDrop(p *Pass) error {
	for _, f := range p.Files {
		readOnly := readOnlyFiles(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkBlankErrorAssign(p, n)
			case *ast.ExprStmt:
				checkBareErrorCall(p, n)
			case *ast.DeferStmt:
				checkDeferredErrorCall(p, n, readOnly)
			}
			return true
		})
	}
	return nil
}

// checkDeferredErrorCall flags `defer f()` where f returns an error
// nobody will see. Deferred Close on a write path is the classic
// short-write hole: the buffer flushes at Close, and the discarded
// error is the only evidence the file is truncated. Close on a file
// that was only ever opened read-only is exempt — there is nothing
// buffered to lose.
func checkDeferredErrorCall(p *Pass, n *ast.DeferStmt, readOnly map[types.Object]bool) {
	t := p.TypesInfo.TypeOf(n.Call)
	if t == nil || !resultHasError(t) {
		return
	}
	if errDropExempt(p, n.Call) {
		return
	}
	if sel, ok := n.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && readOnly[p.TypesInfo.ObjectOf(id)] {
			return
		}
	}
	p.Reportf(n.Call.Pos(), "deferred call discards its error result; capture it in a named return or add //lint:ignore errdrop <reason>")
}

// readOnlyFiles collects objects whose every definition in the file
// is an os.Open call — read-only handles whose Close has nothing
// buffered to report. An object also assigned from anything else
// (os.Create, os.OpenFile, ...) is conservatively not read-only.
func readOnlyFiles(p *Pass, f *ast.File) map[types.Object]bool {
	opened := map[types.Object]bool{}
	tainted := map[types.Object]bool{}
	record := func(lhs ast.Expr, fromOpen bool) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := p.TypesInfo.ObjectOf(id)
		if obj == nil {
			return
		}
		if fromOpen {
			opened[obj] = true
		} else {
			tainted[obj] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		asgn, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		fromOpen := false
		if len(asgn.Rhs) == 1 {
			if call, ok := ast.Unparen(asgn.Rhs[0]).(*ast.CallExpr); ok {
				fn := funcObj(p.TypesInfo, call)
				fromOpen = fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == "Open"
			}
		}
		record(asgn.Lhs[0], fromOpen)
		for _, lhs := range asgn.Lhs[1:] {
			record(lhs, false)
		}
		return true
	})
	for obj := range tainted {
		delete(opened, obj)
	}
	return opened
}

// checkBlankErrorAssign flags `_ = f()` and `x, _ := g()` where the
// discarded component is an error.
func checkBlankErrorAssign(p *Pass, n *ast.AssignStmt) {
	// Multi-value call on the right: match blanks against the tuple.
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		tup, ok := p.TypesInfo.TypeOf(n.Rhs[0]).(*types.Tuple)
		if !ok || tup.Len() != len(n.Lhs) {
			return
		}
		for i, lhs := range n.Lhs {
			if isBlank(lhs) && types.Identical(tup.At(i).Type(), errorType) {
				p.Reportf(lhs.Pos(), "error discarded via _; handle it or add //lint:ignore errdrop <reason>")
			}
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		if isBlank(lhs) && types.Identical(p.TypesInfo.TypeOf(n.Rhs[i]), errorType) {
			p.Reportf(lhs.Pos(), "error discarded via _; handle it or add //lint:ignore errdrop <reason>")
		}
	}
}

// checkBareErrorCall flags expression-statement calls whose results
// include an error.
func checkBareErrorCall(p *Pass, stmt *ast.ExprStmt) {
	call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
	if !ok {
		return
	}
	t := p.TypesInfo.TypeOf(call)
	if t == nil || !resultHasError(t) {
		return
	}
	if errDropExempt(p, call) {
		return
	}
	p.Reportf(call.Pos(), "call discards its error result; handle it or add //lint:ignore errdrop <reason>")
}

// resultHasError reports whether a call result type contains error.
func resultHasError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errorType)
}

// errDropExempt excuses the conventional never-checked cases: the fmt
// print family (checking every Printf would drown the real findings)
// and writes to in-memory buffers, which are documented not to fail.
func errDropExempt(p *Pass, call *ast.CallExpr) bool {
	fn := funcObj(p.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true // Write* on in-memory buffers never returns an error
	}
	return false
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
