package daemon

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/airlink"
	"repro/internal/dot11"
	"repro/internal/sim"
	"repro/internal/station"
)

// ErrConnectionLost is returned by Client.Run when the AP is gone and
// reconnection is disabled. hidec maps it to a distinct exit code so
// supervisors can tell "link died" from ordinary failures.
var ErrConnectionLost = errors.New("daemon: connection to AP lost")

// ClientState is the hidec connection state machine.
type ClientState int32

const (
	// StateConnecting: association in flight (initial or resumed).
	StateConnecting ClientState = iota
	// StateAssociated: associated and hearing beacons.
	StateAssociated
	// StateDegraded: associated but beacons have gone stale — the AP
	// may be down, restarting, or the air may be lossy.
	StateDegraded
	// StateReconnecting: the association was abandoned; waiting out
	// the backoff before trying again.
	StateReconnecting
	// StateLost: the AP is gone and reconnection is disabled.
	StateLost
)

// String names the state for logs and status lines.
func (s ClientState) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateAssociated:
		return "associated"
	case StateDegraded:
		return "degraded"
	case StateReconnecting:
		return "reconnecting"
	case StateLost:
		return "lost"
	default:
		return fmt.Sprintf("ClientState(%d)", int32(s))
	}
}

// ClientConfig configures a supervised hidec client.
type ClientConfig struct {
	// Connect is the hided air address ("127.0.0.1:5600").
	Connect string
	// SSID is the network to associate with.
	SSID string
	// Addr is this client's MAC (required).
	Addr dot11.MACAddr
	// BSSID is the AP MAC (default 02:1d:e0:ff:00:01).
	BSSID dot11.MACAddr
	// Mode selects HIDE, Legacy, or ClientSide behaviour.
	Mode station.Mode
	// Ports are the open UDP ports reported to the AP.
	Ports []uint16
	// Reconnect re-associates after the AP disappears. When false, a
	// lost connection ends Run with ErrConnectionLost.
	Reconnect bool
	// ReconnectBase is the first backoff step (default 200ms); each
	// failed attempt doubles it up to ReconnectMax (default 5s), with
	// ±25% jitter so a fleet of clients does not stampede a restarted
	// AP.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// BeaconTimeout marks the association degraded when no beacon has
	// been heard for this long (default 10 beacon intervals' worth:
	// 1s).
	BeaconTimeout time.Duration
	// DeadTimeout abandons the association when beacons have been
	// silent this long (default 3× BeaconTimeout).
	DeadTimeout time.Duration
	// CheckInterval is the watchdog cadence (default BeaconTimeout/4).
	CheckInterval time.Duration
	// WriteTimeout bounds every airlink send (default 1s; per-op
	// deadline on the UDP socket).
	WriteTimeout time.Duration
	// ReadIdle bounds every airlink read; an idle expiry is not an
	// error, it just keeps the read loop supervisable (default 1s).
	ReadIdle time.Duration
	// Seed feeds the backoff-jitter RNG (folded with the MAC so equal
	// seeds still desynchronize a fleet).
	Seed uint64
	// Logf receives client log lines (default stderr).
	Logf func(format string, args ...any)
}

// normalized fills defaults.
func (c ClientConfig) normalized() ClientConfig {
	if c.Connect == "" {
		c.Connect = "127.0.0.1:5600"
	}
	if c.SSID == "" {
		c.SSID = "hide-net"
	}
	var zero dot11.MACAddr
	if c.BSSID == zero {
		c.BSSID = dot11.MACAddr{0x02, 0x1d, 0xe0, 0xff, 0x00, 0x01}
	}
	if c.ReconnectBase <= 0 {
		c.ReconnectBase = 200 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 5 * time.Second
	}
	if c.BeaconTimeout <= 0 {
		c.BeaconTimeout = time.Second
	}
	if c.DeadTimeout <= 0 {
		c.DeadTimeout = 3 * c.BeaconTimeout
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = c.BeaconTimeout / 4
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = time.Second
	}
	if c.ReadIdle <= 0 {
		c.ReadIdle = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hidec: "+format+"\n", args...)
		}
	}
	return c
}

// ClientStats counts state-machine activity.
type ClientStats struct {
	// Degradations counts associated→degraded transitions.
	Degradations int
	// Reconnects counts abandoned associations (each starts a backoff
	// cycle).
	Reconnects int
	// Reassociations counts association recoveries after the first.
	Reassociations int
}

// Client is a supervised hidec: the station entity plus a watchdog
// that detects a dead or restarted AP from beacon silence, abandons
// the stale association, and re-associates with exponential backoff.
// Port registrations resume automatically — the HIDE association
// request carries the open-port list, so a re-association after an AP
// restart repopulates the Client UDP Port Table in one exchange.
type Client struct {
	cfg    ClientConfig
	eng    *sim.Engine
	link   *airlink.Link
	st     *station.Station
	inject chan sim.Event
	rng    *sim.RNG

	state    atomic.Int32
	lost     atomic.Bool
	stopRun  context.CancelFunc // set during Run
	stopOnce sync.Once
	engDone  chan struct{} // closed when Run's engine exits

	mu       sync.Mutex
	stats    ClientStats
	attempts int
	// retryAt is the engine time before which the watchdog must not
	// start another association attempt.
	retryAt time.Duration
}

// NewClient dials the AP's air address and builds the supervised
// client. The engine does not run until Run.
func NewClient(cfg ClientConfig) (*Client, error) {
	cfg = cfg.normalized()
	var zero dot11.MACAddr
	if cfg.Addr == zero {
		return nil, errors.New("daemon: client needs a MAC address")
	}
	inject := make(chan sim.Event, 256)
	link, err := airlink.Dial(cfg.Connect, inject)
	if err != nil {
		return nil, err
	}
	c := &Client{
		cfg:     cfg,
		eng:     sim.New(),
		link:    link,
		inject:  inject,
		rng:     sim.NewRNG(cfg.Seed ^ macSeed(cfg.Addr)),
		engDone: make(chan struct{}),
	}
	c.link.SetIOTimeouts(cfg.WriteTimeout, cfg.ReadIdle, nil)
	c.st = station.New(c.eng, link, station.Config{
		Addr:  cfg.Addr,
		BSSID: cfg.BSSID,
		Mode:  cfg.Mode,
	})
	for _, p := range cfg.Ports {
		c.st.OpenPort(p)
	}
	c.state.Store(int32(StateConnecting))
	return c, nil
}

// macSeed folds a MAC into a seed so same-seed clients still draw
// distinct jitter.
func macSeed(mac dot11.MACAddr) uint64 {
	var s uint64
	for _, b := range mac {
		s = s*131 + uint64(b)
	}
	return s
}

// Station exposes the underlying station for stats and energy
// accounting.
func (c *Client) Station() *station.Station { return c.st }

// State is the current connection state.
func (c *Client) State() ClientState { return ClientState(c.state.Load()) }

// Stats snapshots the state-machine counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Engine exposes the client's engine (the harness schedules probe
// work on it).
func (c *Client) Engine() *sim.Engine { return c.eng }

// Do runs fn on the client's engine goroutine and waits for it,
// bounded by timeout — the race-free way for a harness to read
// station state while Run is live.
func (c *Client) Do(timeout time.Duration, fn func(now time.Duration)) error {
	done := make(chan struct{})
	ev := func(now time.Duration) {
		fn(now)
		close(done)
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case c.inject <- ev:
	case <-c.engDone:
		return errEngineStopped
	case <-t.C:
		return errEngineBusy
	}
	select {
	case <-done:
		return nil
	case <-c.engDone:
		return errEngineStopped
	case <-t.C:
		return errEngineBusy
	}
}

// Run associates and serves until ctx is cancelled — or, with
// Reconnect disabled, until the AP disappears, in which case it
// returns ErrConnectionLost.
func (c *Client) Run(ctx context.Context) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	c.stopRun = cancel
	var wg sync.WaitGroup
	defer wg.Wait()
	//lint:ignore errdrop closing a UDP socket at teardown; Serve already surfaced any I/O error
	defer c.link.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := c.link.Serve(); err != nil && runCtx.Err() == nil {
			c.cfg.Logf("link: %v", err)
		}
	}()

	c.st.StartAssociation(c.cfg.SSID)
	c.scheduleWatchdog()

	err := c.eng.RunRealtime(runCtx, c.inject)
	close(c.engDone)
	if c.lost.Load() {
		return fmt.Errorf("%w (no beacon from %s for %v)", ErrConnectionLost, c.cfg.BSSID, c.cfg.DeadTimeout)
	}
	if errors.Is(err, context.Canceled) && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// scheduleWatchdog drives the state machine on the engine clock.
func (c *Client) scheduleWatchdog() {
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		c.check(now)
		if c.State() != StateLost {
			c.eng.MustScheduleAfter(c.cfg.CheckInterval, tick)
		}
	}
	c.eng.MustScheduleAfter(c.cfg.CheckInterval, tick)
}

// check runs one watchdog pass; it is only called on the engine
// goroutine, so it may touch station state freely.
func (c *Client) check(now time.Duration) {
	last, heard := c.st.LastBeaconAt()
	stale := now - last
	if !heard {
		stale = now
	}
	state := c.State()
	if c.st.Associated() {
		switch {
		case stale > c.cfg.DeadTimeout:
			// Associated but the AP has gone silent past the dead
			// threshold: the AP died or restarted. Abandon locally (no
			// disassoc frame — nobody is listening) and back off.
			c.abandon(now, "beacons silent")
		case stale > c.cfg.BeaconTimeout:
			if state != StateDegraded {
				c.setState(StateDegraded)
				c.mu.Lock()
				c.stats.Degradations++
				c.mu.Unlock()
				c.cfg.Logf("degraded: no beacon for %v", stale.Truncate(time.Millisecond))
			}
		default:
			if state != StateAssociated {
				c.setState(StateAssociated)
				c.mu.Lock()
				if c.stats.Reconnects > 0 {
					c.stats.Reassociations++
				}
				c.attempts = 0
				c.mu.Unlock()
				c.cfg.Logf("associated: aid=%d", c.st.AID())
			}
		}
		return
	}
	// Not associated: either the initial association is still in
	// flight, or a previous association was torn down (AP-initiated
	// disassoc, abandon, station give-up). Retry on the backoff clock.
	if state == StateAssociated || state == StateDegraded {
		// The AP disassociated us (drain, eviction) or the station gave
		// up; enter the reconnect cycle.
		c.abandon(now, "association dropped")
		return
	}
	c.mu.Lock()
	retryAt := c.retryAt
	c.mu.Unlock()
	if now < retryAt {
		return
	}
	if state == StateReconnecting {
		c.cfg.Logf("reconnecting: association attempt %d", c.attemptCount())
		c.setState(StateConnecting)
		c.st.StartAssociation(c.cfg.SSID)
		return
	}
	// StateConnecting with the retry window open: the in-flight
	// attempt is the station's own (it retries with its AckTimeout);
	// if it has given up past the dead window, kick a fresh one.
	if stale > c.cfg.DeadTimeout {
		c.abandon(now, "association never completed")
	}
}

// abandon tears down the local association (no frame), records the
// reconnect, and arms the next attempt — or ends the run with
// ErrConnectionLost when reconnection is disabled.
func (c *Client) abandon(now time.Duration, why string) {
	c.st.Abandon()
	if !c.cfg.Reconnect {
		c.cfg.Logf("connection lost (%s), reconnect disabled", why)
		c.lost.Store(true)
		c.setState(StateLost)
		c.stopOnce.Do(func() {
			if c.stopRun != nil {
				c.stopRun()
			}
		})
		return
	}
	c.mu.Lock()
	c.stats.Reconnects++
	backoff := c.backoffLocked()
	c.retryAt = now + backoff
	c.mu.Unlock()
	c.setState(StateReconnecting)
	c.cfg.Logf("%s: backing off %v before re-associating", why, backoff.Truncate(time.Millisecond))
}

// backoffLocked computes the next backoff step: base<<attempts capped
// at max, with ±25% jitter. Callers hold c.mu.
func (c *Client) backoffLocked() time.Duration {
	d := c.cfg.ReconnectBase
	for i := 0; i < c.attempts && d < c.cfg.ReconnectMax; i++ {
		d *= 2
	}
	if d > c.cfg.ReconnectMax {
		d = c.cfg.ReconnectMax
	}
	c.attempts++
	// Jitter to ±25%: draw j in [0, d/2) and shift by -d/4.
	if q := d / 4; q > 0 {
		j := time.Duration(c.rng.Uint64() % uint64(2*q))
		d += j - q
	}
	return d
}

// Kill hard-stops the client without sending a disassociation frame —
// the process-crash stand-in that the AP's liveness sweep exists to
// catch. Run returns shortly after.
func (c *Client) Kill() {
	c.stopOnce.Do(func() {
		if c.stopRun != nil {
			c.stopRun()
		}
	})
}

func (c *Client) attemptCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attempts
}

func (c *Client) setState(s ClientState) { c.state.Store(int32(s)) }
