package lint

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the context-first API convention established by
// the parallel engine: in internal/core, internal/check, and
// internal/engine, exported functions that spawn goroutines or fan
// work over the engine's worker pool must take a context.Context as
// their first parameter (so Ctrl-C reaches every evaluation cell),
// and the legacy non-Context entry points must be one-line
// delegations to their Context variants so the two can never drift.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "exported functions in internal/core, internal/check, internal/engine, " +
		"internal/daemon, and internal/control that spawn goroutines or call " +
		"engine.Map/ForEach must take context.Context first; a legacy Foo alongside " +
		"FooContext must be a one-line delegation",
	Run: runCtxFirst,
}

// ctxFirstScope lists the packages carrying the convention.
var ctxFirstScope = map[string]bool{
	"internal/core":    true,
	"internal/check":   true,
	"internal/engine":  true,
	"internal/ess":     true,
	"internal/daemon":  true,
	"internal/control": true,
}

func runCtxFirst(p *Pass) error {
	if !ctxFirstScope[p.RelPath()] {
		return nil
	}
	// Collect exported top-level functions by name (receiver-qualified
	// for methods) to pair shims with their Context variants.
	decls := make(map[string]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			decls[declKey(fn)] = fn
		}
	}
	for _, fn := range decls {
		hasCtx := firstParamIsContext(p, fn)
		if !hasCtx && (spawnsGoroutine(fn) || fansOutOnEngine(p, fn)) {
			p.Reportf(fn.Pos(), "exported %s spawns concurrent work but does not take context.Context as its first parameter", fn.Name.Name)
			continue
		}
		if hasCtx {
			continue
		}
		ctxVariant, ok := decls[declKey(fn)+"Context"]
		if !ok || !firstParamIsContext(p, ctxVariant) {
			continue
		}
		if !isOneLineDelegation(p, fn, ctxVariant.Name.Name) {
			p.Reportf(fn.Pos(), "legacy %s must be a one-line delegation to %s(context.Background(), ...)", fn.Name.Name, ctxVariant.Name.Name)
		}
	}
	return nil
}

// declKey names a function declaration, prefixing methods with their
// receiver type so Foo and (T).Foo don't collide.
func declKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// firstParamIsContext reports whether fn's first (non-receiver)
// parameter is a context.Context.
func firstParamIsContext(p *Pass, fn *ast.FuncDecl) bool {
	params := fn.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	t := p.TypesInfo.TypeOf(params.List[0].Type)
	return t != nil && isContext(t)
}

// spawnsGoroutine reports whether fn's body contains a go statement.
func spawnsGoroutine(fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// fansOutOnEngine reports whether fn calls the worker pool's
// engine.Map or engine.ForEach.
func fansOutOnEngine(p *Pass, fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		f := funcObj(p.TypesInfo, call)
		if f != nil && f.Pkg() != nil &&
			f.Pkg().Path() == p.ModulePath+"/internal/engine" &&
			(f.Name() == "Map" || f.Name() == "ForEach") {
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() == nil {
				found = true
			}
		}
		return !found
	})
	return found
}

// isOneLineDelegation reports whether fn's body is exactly
// `return Target(context.Background()|context.TODO(), ...)`.
func isOneLineDelegation(p *Pass, fn *ast.FuncDecl, target string) bool {
	if len(fn.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch stmt := fn.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(stmt.Results) != 1 {
			return false
		}
		call, _ = ast.Unparen(stmt.Results[0]).(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = ast.Unparen(stmt.X).(*ast.CallExpr)
	default:
		return false
	}
	if call == nil {
		return false
	}
	f := funcObj(p.TypesInfo, call)
	if f == nil || f.Name() != target {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	bg := funcObj(p.TypesInfo, first)
	return bg != nil && bg.Pkg() != nil && bg.Pkg().Path() == "context" &&
		(bg.Name() == "Background" || bg.Name() == "TODO")
}
