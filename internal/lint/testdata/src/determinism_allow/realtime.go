// Package fixture stands in for the real-time adapter: analyzed as
// repro/internal/sim, this file's name puts it on the determinism
// allowlist, so its wall-clock read must not be reported.
package fixture

import "time"

// WallClock pins virtual time to the wall clock by design.
func WallClock() time.Time {
	return time.Now()
}
