package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/dot11"
)

func TestPCAPRoundTrip(t *testing.T) {
	tr, err := GenerateScenario(Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePCAP(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPCAP(&buf, PCAPOptions{Name: tr.Name, DefaultRate: dot11.Rate1Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Frames) != len(tr.Frames) {
		t.Fatalf("round trip lost frames: %d vs %d", len(got.Frames), len(tr.Frames))
	}
	for i := range tr.Frames {
		w, g := tr.Frames[i], got.Frames[i]
		// Timestamps round to microseconds; rate does not survive DLT
		// 105 (no radiotap) and reverts to the default.
		if g.At.Truncate(time.Microsecond) != w.At.Truncate(time.Microsecond) {
			t.Fatalf("frame %d time %v != %v", i, g.At, w.At)
		}
		if g.DstPort != w.DstPort || g.Length != w.Length || g.MoreData != w.MoreData {
			t.Fatalf("frame %d: got %+v, want %+v", i, g, w)
		}
		if g.Rate != dot11.Rate1Mbps {
			t.Fatalf("frame %d rate = %v, want default", i, g.Rate)
		}
	}
}

// buildEthernetPCAP synthesizes an Ethernet capture with the given
// packets (each: offset, dst MAC, payload bytes after the MAC header).
func buildEthernetPCAP(t *testing.T, pkts [][]byte, times []time.Duration) []byte {
	t.Helper()
	var buf bytes.Buffer
	var gh [pcapGlobalHeaderLen]byte
	binary.LittleEndian.PutUint32(gh[0:4], pcapMagicMicros)
	binary.LittleEndian.PutUint32(gh[20:24], DLTEthernet)
	buf.Write(gh[:])
	var rec [pcapRecordHeaderLen]byte
	for i, p := range pkts {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(times[i]/time.Second))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(times[i]%time.Second/time.Microsecond))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(p)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(p)))
		buf.Write(rec[:])
		buf.Write(p)
	}
	return buf.Bytes()
}

// ethBroadcastUDP builds a broadcast Ethernet frame carrying UDP.
func ethBroadcastUDP(dstPort uint16, payload int) []byte {
	ip := make([]byte, 20+8+payload)
	ip[0] = 0x45
	ip[9] = 17
	ip[28-8+2] = byte(dstPort >> 8) // udp[2:4] after 20-byte IP header
	ip[28-8+3] = byte(dstPort)
	eth := make([]byte, 14)
	for i := 0; i < 6; i++ {
		eth[i] = 0xff
	}
	eth[12], eth[13] = 0x08, 0x00
	return append(eth, ip...)
}

func TestReadPCAPEthernet(t *testing.T) {
	pkts := [][]byte{
		ethBroadcastUDP(5353, 50),
		ethBroadcastUDP(1900, 80),
	}
	// A unicast packet that must be skipped.
	uni := ethBroadcastUDP(9999, 10)
	uni[0] = 0x02
	pkts = append(pkts, uni)
	// Epoch-style timestamps exercise the rebase-to-first-packet path.
	const epoch = 1_700_000_000 * time.Second
	raw := buildEthernetPCAP(t, pkts,
		[]time.Duration{epoch + time.Second, epoch + 2*time.Second, epoch + 3*time.Second})

	tr, err := ReadPCAP(bytes.NewReader(raw), PCAPOptions{Name: "eth"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Frames) != 2 {
		t.Fatalf("frames = %d, want 2 (unicast skipped)", len(tr.Frames))
	}
	if tr.Frames[0].DstPort != 5353 || tr.Frames[1].DstPort != 1900 {
		t.Fatalf("ports = %d, %d", tr.Frames[0].DstPort, tr.Frames[1].DstPort)
	}
	if tr.Frames[0].At != 0 || tr.Frames[1].At != time.Second {
		t.Fatalf("times not rebased: %v %v", tr.Frames[0].At, tr.Frames[1].At)
	}
	// Ethernet header swapped for 802.11 MAC + LLC/SNAP.
	wantLen := len(pkts[0]) - 14 + dot11.MACHeaderLen + dot11.LLCSNAPLen
	if tr.Frames[0].Length != wantLen {
		t.Fatalf("length = %d, want %d", tr.Frames[0].Length, wantLen)
	}
}

func TestReadPCAPRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a pcap"),
		func() []byte { // unsupported link type
			var gh [pcapGlobalHeaderLen]byte
			binary.LittleEndian.PutUint32(gh[0:4], pcapMagicMicros)
			binary.LittleEndian.PutUint32(gh[20:24], 999)
			return gh[:]
		}(),
	}
	for i, c := range cases {
		if _, err := ReadPCAP(bytes.NewReader(c), PCAPOptions{}); err == nil {
			t.Errorf("case %d: garbage pcap accepted", i)
		}
	}
}

func TestReadPCAPBigEndianAndNanos(t *testing.T) {
	// Big-endian nanosecond magic with one broadcast packet.
	var buf bytes.Buffer
	var gh [pcapGlobalHeaderLen]byte
	binary.BigEndian.PutUint32(gh[0:4], pcapMagicNanos)
	binary.BigEndian.PutUint32(gh[20:24], DLTEthernet)
	buf.Write(gh[:])
	p := ethBroadcastUDP(5353, 10)
	var rec [pcapRecordHeaderLen]byte
	binary.BigEndian.PutUint32(rec[0:4], 10)
	binary.BigEndian.PutUint32(rec[4:8], 500_000_000) // 0.5 s in ns
	binary.BigEndian.PutUint32(rec[8:12], uint32(len(p)))
	binary.BigEndian.PutUint32(rec[12:16], uint32(len(p)))
	buf.Write(rec[:])
	buf.Write(p)

	tr, err := ReadPCAP(&buf, PCAPOptions{Name: "be"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Frames) != 1 {
		t.Fatalf("frames = %d, want 1", len(tr.Frames))
	}
}

func TestParseRadiotap(t *testing.T) {
	// Radiotap header: version 0, length 12, present = Flags|Rate|Channel
	// (bits 1, 2, 3): flags(1) rate(1) then channel(4, align 2).
	hdr := []byte{
		0x00, 0x00, // version, pad
		0x0c, 0x00, // length = 12
		0x0e, 0x00, 0x00, 0x00, // present: bits 1,2,3
		0x00,       // flags
		0x16,       // rate = 22 * 500 kb/s = 11 Mb/s
		0x00, 0x00, // (channel would follow; truncated within hdrLen)
	}
	hdrLen, rate, ok := parseRadiotap(hdr)
	if !ok || hdrLen != 12 {
		t.Fatalf("parseRadiotap: ok=%v len=%d", ok, hdrLen)
	}
	if rate != dot11.Rate11Mbps {
		t.Fatalf("rate = %v, want 11 Mb/s", rate)
	}
}

func TestParseRadiotapWithTSFT(t *testing.T) {
	// TSFT (8 bytes, align 8) before Rate: present bits 0 and 2.
	hdr := make([]byte, 18)
	hdr[2] = 18 // length
	binary.LittleEndian.PutUint32(hdr[4:8], 1<<0|1<<2)
	hdr[16] = 0x04 // rate = 2 * 500 kb/s? No: 4*500k = 2 Mb/s
	hdrLen, rate, ok := parseRadiotap(hdr)
	if !ok || hdrLen != 18 {
		t.Fatalf("ok=%v len=%d", ok, hdrLen)
	}
	if rate != dot11.Rate2Mbps {
		t.Fatalf("rate = %v, want 2 Mb/s", rate)
	}
}

func TestParseRadiotapChainedPresent(t *testing.T) {
	// Present word with ext bit set chains to a second word; Rate in
	// the first word still parses.
	hdr := make([]byte, 16)
	hdr[2] = 16
	binary.LittleEndian.PutUint32(hdr[4:8], 1<<2|1<<31)
	binary.LittleEndian.PutUint32(hdr[8:12], 0)
	hdr[12] = 0x02 // 1 Mb/s
	_, rate, ok := parseRadiotap(hdr)
	if !ok || rate != dot11.Rate1Mbps {
		t.Fatalf("ok=%v rate=%v", ok, rate)
	}
}

func TestParseRadiotapRejectsBad(t *testing.T) {
	if _, _, ok := parseRadiotap([]byte{0, 0}); ok {
		t.Error("short radiotap accepted")
	}
	bad := make([]byte, 8)
	bad[0] = 1 // wrong version
	bad[2] = 8
	if _, _, ok := parseRadiotap(bad); ok {
		t.Error("wrong version accepted")
	}
}

func TestReadPCAPRadiotap(t *testing.T) {
	// Build a radiotap + 802.11 capture by prefixing WritePCAP-style
	// frames with a radiotap header carrying an 11 Mb/s rate.
	rt := []byte{
		0x00, 0x00, 0x09, 0x00,
		0x04, 0x00, 0x00, 0x00, // present: Rate only
		0x16, // 11 Mb/s
	}
	df := &dot11.DataFrame{
		Header: dot11.MACHeader{
			FC:    dot11.FrameControl{FromDS: true},
			Addr1: dot11.Broadcast,
		},
		Payload: dot11.EncapsulateUDP(dot11.UDPDatagram{DstPort: 1900, Payload: make([]byte, 20)}),
	}
	pkt := append(append([]byte(nil), rt...), df.Marshal()...)

	var buf bytes.Buffer
	var gh [pcapGlobalHeaderLen]byte
	binary.LittleEndian.PutUint32(gh[0:4], pcapMagicMicros)
	binary.LittleEndian.PutUint32(gh[20:24], DLTRadiotap)
	buf.Write(gh[:])
	var rec [pcapRecordHeaderLen]byte
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(pkt)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(pkt)))
	buf.Write(rec[:])
	buf.Write(pkt)

	tr, err := ReadPCAP(&buf, PCAPOptions{Name: "rt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Frames) != 1 {
		t.Fatalf("frames = %d, want 1", len(tr.Frames))
	}
	if tr.Frames[0].Rate != dot11.Rate11Mbps {
		t.Fatalf("rate = %v, want 11 Mb/s from radiotap", tr.Frames[0].Rate)
	}
	if tr.Frames[0].DstPort != 1900 {
		t.Fatalf("port = %d", tr.Frames[0].DstPort)
	}
}

func TestReadPCAPSkipsControlFrames(t *testing.T) {
	// An 802.11 capture containing a beacon and an ACK yields no trace
	// frames.
	var buf bytes.Buffer
	var gh [pcapGlobalHeaderLen]byte
	binary.LittleEndian.PutUint32(gh[0:4], pcapMagicMicros)
	binary.LittleEndian.PutUint32(gh[20:24], DLT80211)
	buf.Write(gh[:])
	beacon := &dot11.Beacon{Header: dot11.MACHeader{Addr1: dot11.Broadcast}, SSID: "x"}
	braw, err := beacon.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ack := (&dot11.ACK{RA: dot11.MACAddr{1}}).Marshal()
	var rec [pcapRecordHeaderLen]byte
	for _, p := range [][]byte{braw, ack} {
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(p)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(p)))
		buf.Write(rec[:])
		buf.Write(p)
	}
	tr, err := ReadPCAP(&buf, PCAPOptions{Name: "ctl"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Frames) != 0 {
		t.Fatalf("frames = %d, want 0", len(tr.Frames))
	}
}
