package policy

import (
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// timeDuration aliases time.Duration to keep the convert helper terse.
type timeDuration = time.Duration

// tau is the per-frame WiFi wakelock duration of the receive-all and
// useful-frame paths — one second, per [6] and Table I.
const tau = time.Second

// receiveAll implements the stock "receive-all" solution.
type receiveAll struct{}

var _ Policy = receiveAll{}

// Kind identifies the policy.
func (receiveAll) Kind() Kind { return ReceiveAll }

// Apply passes every frame with the full τ wakelock. The usefulness
// vector is validated but otherwise ignored: the stock system cannot
// tell useful frames apart.
func (p receiveAll) Apply(tr *trace.Trace, useful []bool) ([]energy.Arrival, error) {
	return p.appendTo(nil, tr, useful)
}

func (receiveAll) appendTo(dst []energy.Arrival, tr *trace.Trace, useful []bool) ([]energy.Arrival, error) {
	if err := checkLen(tr, useful); err != nil {
		return nil, err
	}
	dst = growArrivals(dst, len(tr.Frames))
	for _, f := range tr.Frames {
		dst = append(dst, convert(f, tau))
	}
	return dst, nil
}

// DefaultDriverWakelock is the short wakelock the client-side filter
// holds while the driver classifies and drops a useless frame. Dropping
// with a literally zero wakelock makes the device suspend-churn — on
// dense traffic it re-enters the suspend operation after every frame,
// and because the suspend operation's power (Esp/Tsp: ~205 mW Nexus
// One, ~520 mW Galaxy S4) exceeds the active-idle power, that costs
// more than simply staying awake. A ~100 ms driver wakelock batches
// back-to-back useless frames into one suspend attempt, which is what
// a deployable driver filter does and what keeps the client-side
// solution's lower bound at or below receive-all.
const DefaultDriverWakelock = 100 * time.Millisecond

// ClientSidePolicy implements the lower bound of the client-side
// driver filter [6]: every frame is still received (radio cost);
// useless frames are dropped in the driver under a short processing
// wakelock and the system re-suspends, paying the state-transfer cost
// ("the overhead of this solution is more frequent state transfers").
type ClientSidePolicy struct {
	// DriverWakelock is the wakelock held to drop a useless frame.
	// Zero means drop instantly (the pathological churn regime).
	DriverWakelock time.Duration
}

var _ Policy = ClientSidePolicy{}

// Kind identifies the policy.
func (ClientSidePolicy) Kind() Kind { return ClientSide }

// Apply passes every frame; useless frames get the driver wakelock.
func (p ClientSidePolicy) Apply(tr *trace.Trace, useful []bool) ([]energy.Arrival, error) {
	return p.appendTo(nil, tr, useful)
}

func (p ClientSidePolicy) appendTo(dst []energy.Arrival, tr *trace.Trace, useful []bool) ([]energy.Arrival, error) {
	if err := checkLen(tr, useful); err != nil {
		return nil, err
	}
	dst = growArrivals(dst, len(tr.Frames))
	for i, f := range tr.Frames {
		wl := p.DriverWakelock
		if useful[i] {
			wl = tau
		}
		dst = append(dst, convert(f, wl))
	}
	return dst, nil
}

// hidePolicy implements the paper's AP-side filter: useless frames are
// hidden by the AP, so the client receives only useful frames, each
// with the full τ wakelock.
type hidePolicy struct{}

var _ Policy = hidePolicy{}

// Kind identifies the policy.
func (hidePolicy) Kind() Kind { return HIDE }

// Apply passes only useful frames.
func (p hidePolicy) Apply(tr *trace.Trace, useful []bool) ([]energy.Arrival, error) {
	return p.appendTo(nil, tr, useful)
}

func (hidePolicy) appendTo(dst []energy.Arrival, tr *trace.Trace, useful []bool) ([]energy.Arrival, error) {
	if err := checkLen(tr, useful); err != nil {
		return nil, err
	}
	for i, f := range tr.Frames {
		if useful[i] {
			dst = append(dst, convert(f, tau))
		}
	}
	return dst, nil
}

// AppendArrivals applies p to the tagged trace, appending the arrivals
// to dst — normally dst[:0] of a buffer reused across evaluation cells
// — and returning the extended slice. It produces exactly the arrivals
// p.Apply would, without the per-call slice allocation for the builtin
// policies; other Policy implementations fall back to Apply.
func AppendArrivals(dst []energy.Arrival, p Policy, tr *trace.Trace, useful []bool) ([]energy.Arrival, error) {
	switch q := p.(type) {
	case receiveAll:
		return q.appendTo(dst, tr, useful)
	case ClientSidePolicy:
		return q.appendTo(dst, tr, useful)
	case hidePolicy:
		return q.appendTo(dst, tr, useful)
	default:
		arr, err := p.Apply(tr, useful)
		if err != nil {
			return nil, err
		}
		return append(dst, arr...), nil
	}
}

// growArrivals ensures dst can take n more appends without reallocating.
func growArrivals(dst []energy.Arrival, n int) []energy.Arrival {
	if cap(dst)-len(dst) < n {
		g := make([]energy.Arrival, len(dst), len(dst)+n)
		copy(g, dst)
		return g
	}
	return dst
}

// CombinedPolicy is the paper's future-work combination (§VIII): HIDE
// filtering at the AP plus the client-side driver filter behind it.
// With a perfectly fresh port table it degenerates to HIDE; with a
// stale table, a fraction of frames the AP forwards as "useful" are in
// fact useless by the time they arrive, and the driver filter catches
// them (zero wakelock instead of a full τ wake-up).
type CombinedPolicy struct {
	// Staleness is the probability that a forwarded "useful" frame is
	// actually useless on arrival (port closed since the last UDP Port
	// Message). Zero means a perfectly synchronized table.
	Staleness float64
	// Seed makes the staleness draw reproducible.
	Seed uint64
}

var _ Policy = CombinedPolicy{}

// Kind identifies the policy.
func (CombinedPolicy) Kind() Kind { return Combined }

// Apply passes only frames the AP forwards; stale ones get a zero
// wakelock from the driver filter.
func (p CombinedPolicy) Apply(tr *trace.Trace, useful []bool) ([]energy.Arrival, error) {
	if err := checkLen(tr, useful); err != nil {
		return nil, err
	}
	if p.Staleness < 0 || p.Staleness > 1 {
		return nil, fmt.Errorf("policy: staleness %v outside [0, 1]", p.Staleness)
	}
	r := sim.NewRNG(p.Seed)
	var out []energy.Arrival
	for i, f := range tr.Frames {
		if !useful[i] {
			continue
		}
		wl := tau
		if p.Staleness > 0 && r.Float64() < p.Staleness {
			wl = 0
		}
		out = append(out, convert(f, wl))
	}
	return out, nil
}
