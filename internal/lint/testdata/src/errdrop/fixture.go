// Package fixture exercises the errdrop analyzer: discarded error
// results, the conventional exemptions, and a justified suppression.
package fixture

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func work() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Dropped discards errors every way the check catches.
func Dropped() int {
	_ = work()     // want `error discarded via _`
	work()         // want `call discards its error result`
	n, _ := pair() // want `error discarded via _`
	return n
}

// DeferredDrop is the short-write hole: the file buffers until
// Close, and the deferred discard is the only place the truncation
// would have surfaced.
func DeferredDrop(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred call discards its error result`
	_, err = f.WriteString("data")
	return err
}

// DeferredFunc drops the same error one wrapper deeper.
func DeferredFunc() {
	defer work() // want `deferred call discards its error result`
}

// DeferredReadOnly is exempt: the handle only ever came from
// os.Open, so Close has nothing buffered to report.
func DeferredReadOnly(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	return f.Read(buf)
}

// DeferredReassigned loses the exemption: the handle is later
// rebound to a writable file, so the deferred Close may flush.
func DeferredReassigned(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	f, err = os.Create(path + ".out")
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred call discards its error result`
	_, err = f.WriteString("data")
	return err
}

// DeferredCaptured is the fix: a named return carries Close's error.
func DeferredCaptured(path string) (err error) {
	f, cerr := os.Create(path)
	if cerr != nil {
		return cerr
	}
	defer func() {
		if e := f.Close(); err == nil {
			err = e
		}
	}()
	_, err = f.WriteString("data")
	return err
}

// Handled checks, exempts, and justifies.
func Handled() error {
	if err := work(); err != nil {
		return err
	}
	//lint:ignore errdrop fixture demonstrates a justified suppression
	_ = work()
	var b strings.Builder
	b.WriteString("ok")
	fmt.Println(b.String())
	return nil
}
