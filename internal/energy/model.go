package energy

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dot11"
)

// Arrival is one broadcast frame as seen by a client's radio, together
// with the wakelock it triggers. Policies produce these: receive-all
// passes every trace frame with the full τ wakelock; the client-side
// filter passes every frame but gives useless ones a zero wakelock
// (drop in driver, re-suspend immediately); HIDE passes only useful
// frames.
type Arrival struct {
	// At is the frame's arrival time from trace start (the paper's t_i).
	At time.Duration
	// Length is the MAC frame length in bytes (l_i).
	Length int
	// Rate is the PHY data rate (r_i).
	Rate dot11.Rate
	// MoreData is the frame's more-data bit (d_more(i), Eq. 10).
	MoreData bool
	// Wakelock is the wakelock duration this frame acquires in the WiFi
	// driver (τ for frames the host must process, 0 for frames dropped
	// in the driver).
	Wakelock time.Duration
}

// rxDuration returns l_i/r_i, the frame's transmission time (Eq. 8).
func (a Arrival) rxDuration() time.Duration {
	if a.Rate <= 0 {
		return 0
	}
	return time.Duration(float64(8*a.Length) / float64(a.Rate) * float64(time.Second))
}

// endTime returns t_i + l_i/r_i.
func (a Arrival) endTime() time.Duration { return a.At + a.rxDuration() }

// Overhead parameterizes the HIDE protocol overhead (Eqs. 15-19).
// The zero value means no overhead (non-HIDE policies).
type Overhead struct {
	// PortMsgInterval is 1/f, the period between UDP Port Messages.
	PortMsgInterval time.Duration
	// PortsPerMsg is N_i, the number of 2-byte UDP ports per message.
	PortsPerMsg int
	// PortMsgRate is the rate port messages are sent at (the paper uses
	// the lowest rate, 1 Mb/s).
	PortMsgRate dot11.Rate
	// BTIMBytes is the added BTIM element length per beacon (element
	// header + offset + partial virtual bitmap).
	BTIMBytes int
}

// DefaultOverhead returns the evaluation settings of Section VI-A2:
// port messages every 10 s at 1 Mb/s carrying 100 ports ("smartphones
// in heavy usage"), and a small BTIM in every beacon.
func DefaultOverhead() Overhead {
	return Overhead{
		PortMsgInterval: 10 * time.Second,
		PortsPerMsg:     100,
		PortMsgRate:     dot11.Rate1Mbps,
		BTIMBytes:       5, // elem ID + length + offset + 2 bitmap octets
	}
}

// PortMsgBytes returns L^m of Eq. 19: PHY preamble/header + MAC header
// + 2 fixed bytes + 2 bytes per port.
func (o Overhead) PortMsgBytes(phy dot11.PHY) int {
	lphy := phy.PreambleHeaderBits / 8
	return lphy + dot11.MACHeaderLen + 2 + 2*o.PortsPerMsg
}

// Config drives one model evaluation.
type Config struct {
	// Device is the Table I profile to charge energy against.
	Device Profile
	// Duration is the total observation window T (the trace duration).
	Duration time.Duration
	// BeaconInterval is T_b (default 100 TU if zero).
	BeaconInterval time.Duration
	// BeaconRate is the rate beacons (and their BTIM bytes) arrive at.
	BeaconRate dot11.Rate
	// PHY supplies preamble/header sizes for Eq. 19.
	PHY dot11.PHY
	// Overhead enables HIDE protocol overhead when non-zero.
	Overhead Overhead
	// BeaconListenInterval divides the beacon-reception energy: a
	// station with listen interval N wakes for one in N beacons
	// (default 1 — the paper's model, every beacon received).
	BeaconListenInterval int
}

// normalized fills in defaults.
func (c Config) normalized() Config {
	if c.BeaconInterval <= 0 {
		c.BeaconInterval = dot11.DefaultBeaconInterval
	}
	if c.BeaconRate <= 0 {
		c.BeaconRate = dot11.Rate1Mbps
	}
	if c.PHY.PreambleHeaderBits == 0 {
		c.PHY = dot11.DefaultPHY()
	}
	if c.BeaconListenInterval <= 0 {
		c.BeaconListenInterval = 1
	}
	return c
}

// Breakdown is the result of one model evaluation: the five components
// of Eq. 2 plus the suspend-time fraction used by Figure 9.
type Breakdown struct {
	// EbJ is beacon reception energy (Eq. 6).
	EbJ float64
	// EfJ is broadcast reception + idle listening energy (Eq. 7).
	EfJ float64
	// EwlJ is system-idle energy under wakelocks (Eq. 12).
	EwlJ float64
	// EstJ is suspend/resume state-transfer energy (Eq. 13).
	EstJ float64
	// EoJ is HIDE protocol overhead energy (Eq. 15).
	EoJ float64
	// SuspendFraction is the fraction of the window spent in completed
	// suspend mode (Figure 9's metric).
	SuspendFraction float64
	// Duration is the observation window the energies accrued over.
	Duration time.Duration
	// Received is the number of frames the radio received.
	Received int
	// Resumes is the number of suspend→active transitions (Σ 1-s(i)).
	Resumes int
	// AbortedSuspends is the count of suspend operations aborted by a
	// frame arrival (non-zero y(i) terms of Eq. 14).
	AbortedSuspends int
}

// TotalJ returns E of Eq. 2.
func (b Breakdown) TotalJ() float64 { return b.EbJ + b.EfJ + b.EwlJ + b.EstJ + b.EoJ }

// Scale returns the breakdown for n stations that each accrued exactly
// b — the cohort aggregation step. Energies and event counts multiply;
// the per-station ratios (SuspendFraction, Duration, and therefore
// AvgPowerW) are intensive and stay put. Each component is a single
// float64 multiply, so Scale(n) is bit-identical to what IEEE-754
// summation of n identical addends would round to only when n is a
// power of two; the cohort equivalence contract therefore compares
// per-member breakdowns, and Scale is the reporting convenience.
func (b Breakdown) Scale(n int) Breakdown {
	f := float64(n)
	b.EbJ *= f
	b.EfJ *= f
	b.EwlJ *= f
	b.EstJ *= f
	b.EoJ *= f
	b.Received *= n
	b.Resumes *= n
	b.AbortedSuspends *= n
	return b
}

// AvgPowerW returns the average power over the window in watts — the
// y-axis of Figures 7 and 8.
func (b Breakdown) AvgPowerW() float64 {
	if b.Duration <= 0 {
		return 0
	}
	return b.TotalJ() / b.Duration.Seconds()
}

// ComponentPowersW returns the five stacked-bar components of Figures
// 7-8 in mW-friendly watts: Eb/T, Ef/T, Est/T, Ewl/T, Eo/T.
func (b Breakdown) ComponentPowersW() (eb, ef, est, ewl, eo float64) {
	if b.Duration <= 0 {
		return
	}
	t := b.Duration.Seconds()
	return b.EbJ / t, b.EfJ / t, b.EstJ / t, b.EwlJ / t, b.EoJ / t
}

// Compute evaluates the Section IV model over the received-frame
// sequence. Frames must be sorted by arrival time.
func Compute(frames []Arrival, cfg Config) (Breakdown, error) {
	cfg = cfg.normalized()
	if err := cfg.Device.Validate(); err != nil {
		return Breakdown{}, err
	}
	if cfg.Duration <= 0 {
		return Breakdown{}, fmt.Errorf("energy: non-positive duration %v", cfg.Duration)
	}

	dev := cfg.Device
	b := Breakdown{Duration: cfg.Duration, Received: len(frames)}

	// --- Eq. 6: beacon reception. A PS client receives every
	// BeaconListenInterval-th beacon regardless of policy.
	numBeacons := int(cfg.Duration / cfg.BeaconInterval)
	b.EbJ = dev.EBeaconJ * float64(numBeacons/cfg.BeaconListenInterval)

	// --- Eqs. 3-5, 14: reconstruct wakelock starts, durations, states.
	//
	// The paper's recursion assumes every frame holds the same wakelock
	// τ, so "renewal" always extends the expiry. With per-frame
	// wakelocks (the client-side filter gives useless frames a zero
	// wakelock) renewal must not shorten an already-held wakelock, so
	// the expiry is the running maximum of tr(i)+Wakelock(i). A frame
	// arriving between expiry and expiry+Tsp lands mid-suspend and
	// aborts it (Eq. 14); later arrivals find the system suspended
	// (Eq. 5) and pay a full resume+suspend cycle (Eq. 13).
	// The wakelock recursion, the ordering validation, and the Eq. 7
	// receive/idle accounting all walk the frames in order with
	// independent accumulators, so they share one pass (and one
	// rxDuration evaluation per frame). Each accumulator sees exactly
	// the operation sequence the separate loops produced, keeping every
	// float result bit-identical.
	n := len(frames)
	var sumWakelock time.Duration   // total time wakelocks held (Σ twl)
	var sumAbortedY float64         // Σ y(i) for Eq. 13
	var suspendedTime time.Duration // completed-suspend time for Fig. 9
	var expiry time.Duration        // current wakelock expiry
	var tr time.Duration            // wakelock start of the current frame
	var rxTime time.Duration        // Σ tt(i) (Eq. 8)
	var idleTime time.Duration      // Σ td(i) + Σ tf(i) (Eqs. 9-10)
	seenInterval := int64(-1)
	for i, f := range frames {
		if i > 0 && f.At < frames[i-1].At {
			return Breakdown{}, fmt.Errorf("energy: frames out of order at index %d", i)
		}
		rx := f.rxDuration()
		rxEnd := f.At + rx

		// --- Eq. 7 terms: radio receive + idle listening.
		rxTime += rx
		iv := int64(f.At / cfg.BeaconInterval)
		// tf: idle from the interval's beacon to its first frame (Eq. 9).
		if iv != seenInterval {
			seenInterval = iv
			idleTime += f.At - time.Duration(iv)*cfg.BeaconInterval
		}
		// td: post-frame listening while more-data is set (Eq. 10).
		if f.MoreData {
			next := time.Duration(iv+1) * cfg.BeaconInterval
			if i+1 < n && frames[i+1].At < next {
				next = frames[i+1].At
			}
			if d := next - rxEnd; d > 0 {
				idleTime += d
			}
		}

		// --- Eqs. 3-5, 14 terms: the wakelock machine.
		prevTr := tr
		if i == 0 || rxEnd >= expiry+dev.Tsp {
			// Suspended on arrival (the paper assumes s(1)=0): resume.
			tr = rxEnd + dev.Trm
			b.Resumes++
			if i == 0 {
				suspendedTime += rxEnd
			} else {
				suspendedTime += rxEnd - (expiry + dev.Tsp)
			}
			sumWakelock += f.Wakelock
			expiry = tr + f.Wakelock
			continue
		}
		// Active, resuming, or suspending on arrival (s(i)=1).
		tr = maxDur(rxEnd, prevTr)
		if tr > expiry {
			// Eq. 14: arrival mid-suspend aborts the partial suspend.
			sumAbortedY += float64(tr-expiry) / float64(dev.Tsp)
			b.AbortedSuspends++
		}
		if newExpiry := tr + f.Wakelock; newExpiry > expiry {
			sumWakelock += newExpiry - maxDur(expiry, tr)
			expiry = newExpiry
		}
	}
	if n > 0 {
		if end := expiry + dev.Tsp; end < cfg.Duration {
			suspendedTime += cfg.Duration - end
		}
	} else {
		suspendedTime = cfg.Duration
	}
	b.SuspendFraction = math.Max(0, math.Min(1, float64(suspendedTime)/float64(cfg.Duration)))
	b.EfJ = dev.PrW*rxTime.Seconds() + dev.PidleW*idleTime.Seconds()

	// --- Eq. 12: system idle under wakelocks.
	b.EwlJ = dev.PsaW * sumWakelock.Seconds()

	// --- Eq. 13: state transfers (full cycles + aborted suspends).
	b.EstJ = (dev.ErmJ+dev.EspJ)*float64(b.Resumes) + dev.EspJ*sumAbortedY

	// --- Eqs. 15-19: HIDE overhead.
	if cfg.Overhead != (Overhead{}) {
		o := cfg.Overhead
		// E1: extra BTIM bytes in every received beacon, at the beacon
		// rate with the radio in receive state.
		btimTime := float64(8*o.BTIMBytes) / float64(cfg.BeaconRate) * float64(numBeacons/cfg.BeaconListenInterval)
		e1 := dev.PrW * btimTime
		// E2: UDP Port Message transmissions (Eqs. 17-19).
		var e2 float64
		if o.PortMsgInterval > 0 {
			m := float64(cfg.Duration) / float64(o.PortMsgInterval) // Eq. 18
			lm := o.PortMsgBytes(cfg.PHY)
			rate := o.PortMsgRate
			if rate <= 0 {
				rate = dot11.Rate1Mbps
			}
			e2 = dev.PtW * m * float64(8*lm) / float64(rate)
		}
		b.EoJ = e1 + e2
	}
	return b, nil
}

// maxDur returns the larger duration.
func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
