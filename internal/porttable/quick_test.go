package porttable

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dot11"
)

// Property test: Table (the paper's hash-of-linked-lists Client UDP
// Port Table) and ArrayTable (the Section V flat-array alternative)
// are observationally equivalent — any script of Update/Remove calls
// leaves both answering Lookup, Listening, Ports, Clients, and Len
// identically. The script generator draws from a small universe of
// AIDs and ports so collisions, re-updates, and removals are frequent.

// opScript is a randomized sequence of port-table mutations.
type opScript struct {
	Steps []scriptStep
}

type scriptStep struct {
	AID    dot11.AID
	Remove bool
	Ports  []uint16
}

// quickAIDs and quickPorts bound the generator's universe: small
// enough that scripts revisit the same clients and ports constantly.
var (
	quickAIDs  = []dot11.AID{1, 2, 3, 4, 5}
	quickPorts = []uint16{53, 67, 5353, 1900, 5000, 123}
)

// Generate implements quick.Generator.
func (opScript) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size + 1)
	s := opScript{Steps: make([]scriptStep, n)}
	for i := range s.Steps {
		st := scriptStep{AID: quickAIDs[r.Intn(len(quickAIDs))]}
		switch r.Intn(4) {
		case 0:
			st.Remove = true
		default:
			for _, p := range quickPorts {
				if r.Intn(2) == 0 {
					st.Ports = append(st.Ports, p)
				}
			}
			// Occasionally repeat a port: Update must tolerate
			// duplicates in the client's announcement.
			if len(st.Ports) > 0 && r.Intn(4) == 0 {
				st.Ports = append(st.Ports, st.Ports[0])
			}
		}
		s.Steps[i] = st
	}
	return reflect.ValueOf(s)
}

// sortedAIDs returns a sorted copy for order-insensitive comparison —
// Lookup's AID ordering is an implementation detail, membership is the
// contract.
func sortedAIDs(in []dot11.AID) []dot11.AID {
	out := append([]dot11.AID(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedUint16(in []uint16) []uint16 {
	out := append([]uint16(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestQuickTableEquivalence(t *testing.T) {
	prop := func(script opScript) bool {
		ht := New()
		at := NewArray()
		for _, st := range script.Steps {
			if st.Remove {
				ht.Remove(st.AID)
				at.Remove(st.AID)
			} else {
				ht.Update(st.AID, st.Ports)
				at.Update(st.AID, st.Ports)
			}
			if ht.Clients() != at.Clients() || ht.Len() != at.Len() {
				t.Logf("size divergence after %+v: hash (%d clients, %d entries) array (%d, %d)",
					st, ht.Clients(), ht.Len(), at.Clients(), at.Len())
				return false
			}
			for _, p := range quickPorts {
				if !reflect.DeepEqual(sortedAIDs(ht.Lookup(p)), sortedAIDs(at.Lookup(p))) {
					t.Logf("Lookup(%d) diverged after %+v: hash %v array %v",
						p, st, ht.Lookup(p), at.Lookup(p))
					return false
				}
				for _, a := range quickAIDs {
					if ht.Listening(p, a) != at.Listening(p, a) {
						t.Logf("Listening(%d, %d) diverged after %+v", p, a, st)
						return false
					}
				}
			}
			for _, a := range quickAIDs {
				if !reflect.DeepEqual(sortedUint16(ht.Ports(a)), sortedUint16(at.Ports(a))) {
					t.Logf("Ports(%d) diverged after %+v: hash %v array %v",
						a, st, ht.Ports(a), at.Ports(a))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLookupMatchesListening: for any script, Lookup membership
// and Listening agree on both implementations — Algorithm 1 uses both
// entry points and they must be two views of one relation.
func TestQuickLookupMatchesListening(t *testing.T) {
	prop := func(script opScript) bool {
		for _, tbl := range []interface {
			Update(dot11.AID, []uint16)
			Remove(dot11.AID)
			Lookup(uint16) []dot11.AID
			Listening(uint16, dot11.AID) bool
		}{New(), NewArray()} {
			for _, st := range script.Steps {
				if st.Remove {
					tbl.Remove(st.AID)
				} else {
					tbl.Update(st.AID, st.Ports)
				}
			}
			for _, p := range quickPorts {
				members := map[dot11.AID]bool{}
				for _, a := range tbl.Lookup(p) {
					members[a] = true
				}
				for _, a := range quickAIDs {
					if members[a] != tbl.Listening(p, a) {
						t.Logf("Lookup/Listening disagree on port %d aid %d", p, a)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
