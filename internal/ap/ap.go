// Package ap implements a HIDE-capable 802.11 access point for the
// protocol simulation: beacon scheduling with DTIM cadence, group
// frame buffering, per-client unicast buffering with TIM indications,
// the Client UDP Port Table fed by UDP Port Messages, Algorithm 1 flag
// computation, and the BTIM element that hides useless broadcast
// frames from HIDE-enabled clients while legacy clients keep the
// standard broadcast-bit behaviour.
package ap

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dot11"
	"repro/internal/medium"
	"repro/internal/porttable"
	"repro/internal/sim"
)

// Config configures an access point.
type Config struct {
	// BSSID is the AP's MAC address.
	BSSID dot11.MACAddr
	// SSID is the advertised network name.
	SSID string
	// BeaconInterval defaults to 100 TU.
	BeaconInterval time.Duration
	// DTIMPeriod is in beacon intervals (typical 1-3; default 3).
	DTIMPeriod int
	// BeaconRate is the rate for beacons and group frames (basic rate).
	BeaconRate dot11.Rate
	// HIDE enables the HIDE extensions (BTIM + port table). When
	// false the AP behaves as a stock 802.11 AP (receive-all).
	HIDE bool
	// FilterUnicast enables the paper's §I extension: unicast UDP
	// frames addressed to a HIDE client are dropped at the AP when the
	// client has no process listening on the destination port, instead
	// of being buffered and indicated in the TIM. Frames whose payload
	// cannot be classified as UDP always pass (conservative).
	FilterUnicast bool
	// PortTTL expires Client UDP Port Table entries whose last refresh
	// is older than this, swept when each beacon is built. A client
	// that crashed without deregistering stops refreshing, so its stale
	// entries — which would inflate every other client's wakeups
	// forever — age out after one TTL. Stations should refresh well
	// within the TTL (station.Config.PortRefresh). Zero disables
	// expiry: entries then live until disassociation, the paper's
	// behaviour.
	PortTTL time.Duration
}

// normalized fills defaults and clamps fields to protocol limits.
func (c Config) normalized() Config {
	if len(c.SSID) > 32 {
		// 802.11 limits SSIDs to 32 octets; clamping keeps beacon
		// marshalling infallible.
		c.SSID = c.SSID[:32]
	}
	if c.BeaconInterval <= 0 {
		c.BeaconInterval = dot11.DefaultBeaconInterval
	}
	if c.DTIMPeriod <= 0 {
		c.DTIMPeriod = 3
	}
	if c.BeaconRate <= 0 {
		c.BeaconRate = dot11.Rate1Mbps
	}
	return c
}

// client is the AP's per-association state.
type client struct {
	addr        dot11.MACAddr
	aid         dot11.AID
	hideCapable bool
	psMode      bool
	unicast     [][]byte // buffered unicast frames (raw)
	// count > 1 marks an aggregate-cohort representative
	// (AssociateAggregate): this one association stands for count
	// stations sharing a single AID. Exact cohorts (AssociateCohort)
	// instead register every member individually, so their port-table
	// transitions are bit-identical to individually-modeled stations.
	count int
}

// bufferedGroup is one buffered group-addressed frame.
type bufferedGroup struct {
	payload []byte // LLC/SNAP+IP body
	rate    dot11.Rate
	dstPort uint16
	ok      bool // dstPort parsed successfully
}

// Stats counts AP-side protocol activity.
type Stats struct {
	BeaconsSent      int
	DTIMsSent        int
	GroupFramesSent  int
	PortMsgsReceived int
	ACKsSent         int
	PSPollsServed    int
	BTIMBytesSent    int
	AssocResponses   int
	UnicastFiltered  int
	Disassociations  int
	// GroupFramesEnqueued counts group frames accepted from the
	// distribution system; together with GroupFramesSent,
	// BufferedGroupFrames, and GroupFramesLost it closes the group-frame
	// conservation equation (enqueued = sent + pending + lost).
	GroupFramesEnqueued int
	// UnicastEnqueued counts unicast frames accepted for buffering,
	// including frames the FilterUnicast extension then dropped
	// (enqueued = served + filtered + pending + lost).
	UnicastEnqueued int
	// Restarts counts Restart calls (simulated AP power-cycles).
	Restarts int
	// GroupFramesLost and UnicastFramesLost count buffered frames wiped
	// by a Restart — the lost terms of the conservation equations.
	GroupFramesLost   int
	UnicastFramesLost int
	// PortEntriesExpired counts clients aged out of the Client UDP Port
	// Table by the PortTTL sweep.
	PortEntriesExpired int
	// Reassociations counts reassociation exchanges served (roaming
	// stations arriving from another AP of the same ESS).
	Reassociations int
	// PortsSeededOnRoam counts port-table entries seeded at
	// reassociation time from the distribution system's replicated
	// directory (warm handoff) rather than from the station itself.
	PortsSeededOnRoam int
	// DisassocsSent counts AP-initiated disassociation frames
	// (DisassociateAll during drain, liveness evictions).
	DisassocsSent int
	// AssocsRejectedDraining counts association attempts refused with
	// StatusAPFull while the AP was draining.
	AssocsRejectedDraining int
}

// BeaconView is the snapshot of AP state an Observer receives for each
// assembled beacon, before it is transmitted. The cross-validation
// harness uses it to assert Algorithm 1 soundness: a BTIM bit may be
// set for a client only if some buffered frame's destination port is in
// the Client UDP Port Table for that client.
type BeaconView struct {
	// Beacon is the fully assembled frame (TIM and, for HIDE APs, BTIM).
	Beacon *dot11.Beacon
	// IsDTIM marks DTIM beacons (group traffic flushes after these).
	IsDTIM bool
	// BufferedPorts holds the destination UDP port of every buffered
	// group frame whose port was parseable — Algorithm 1's inputs.
	BufferedPorts []uint16
	// UnparsedBuffered counts buffered group frames without a
	// classifiable destination port (never indicated in the BTIM).
	UnparsedBuffered int
}

// Observer receives AP protocol events. Observers run synchronously on
// the simulation goroutine; they must not mutate the AP.
type Observer interface {
	// BeaconBuilt fires after each beacon is assembled, before its
	// transmission and before any group flush it announces.
	BeaconBuilt(now time.Duration, v BeaconView)
}

// AP is the access point entity. Create with New, then Start.
type AP struct {
	cfg     Config
	eng     *sim.Engine
	med     medium.Channel
	table   *porttable.Table
	clients map[dot11.MACAddr]*client
	byAID   map[dot11.AID]*client
	nextAID dot11.AID
	group   []bufferedGroup
	seq     uint16
	dtim    int           // beacons until next DTIM (the DTIM count)
	bootAt  time.Duration // virtual time of the last (re)boot; TSF epoch
	stats   Stats
	obs     Observer
	flagFn  func(bufferedPorts []uint16, table *porttable.Table) *dot11.VirtualBitmap
	// roamPorts, when set, is consulted at reassociation time for a
	// replicated port set from the ESS distribution system (warm
	// handoff). A nil return means no replicated entry — the station
	// resyncs cold via its next UDP Port Message.
	roamPorts func(addr dot11.MACAddr) []uint16
	// portSync, when set, receives every port-table update the AP
	// learns from the air, so the ESS distribution system can
	// replicate entries to the other APs before the station roams.
	portSync func(addr dot11.MACAddr, ports []uint16)

	tickFn sim.Event // bound beaconTick; reused across reschedules
	dirty  bool      // beacon-relevant state changed since last rebuild
	cache  beaconCache
	// draining marks a graceful shutdown in progress: new association
	// and reassociation attempts are refused with StatusAPFull while
	// existing clients are disassociated with real frames.
	draining bool
}

// beaconCache holds the last fully built beacon. While no
// beacon-relevant state changes (no station add/remove, no buffered
// unicast/broadcast change, no port-table mutation), consecutive
// beacons differ only in sequence number, TSF timestamp, DTIM count,
// and the TIM broadcast bit — all fixed-offset fields patched in place,
// so idle DTIMs reuse the encoded bytes verbatim with zero allocations.
type beaconCache struct {
	valid    bool
	tableGen uint64 // porttable.Table.Gen at rebuild time
	raw      []byte // marshalled frame, patched between rebuilds
	beacon   dot11.Beacon
	tim      dot11.TIM
	btim     dot11.BTIM
	btimCost int // BTIMBytesSent increment per beacon (PartialBitmap + 3)
	timOff   int // offset of the TIM element body in raw
	ctlBase  byte
}

var _ medium.Node = (*AP)(nil)

// New creates an AP attached to the medium.
func New(eng *sim.Engine, med medium.Channel, cfg Config) *AP {
	cfg = cfg.normalized()
	a := &AP{
		cfg:     cfg,
		eng:     eng,
		med:     med,
		table:   porttable.New(),
		clients: make(map[dot11.MACAddr]*client),
		byAID:   make(map[dot11.AID]*client),
		nextAID: 1,
		dirty:   true,
	}
	a.tickFn = a.beaconTick
	med.Attach(cfg.BSSID, a)
	return a
}

// Stats returns the AP's protocol counters.
func (a *AP) Stats() Stats { return a.stats }

// SetObserver installs the protocol observer (nil disables it).
func (a *AP) SetObserver(o Observer) { a.obs = o }

// SetFlagComputer overrides Algorithm 1's per-client flag computation.
// The replacement receives the destination ports of the buffered group
// frames and the Client UDP Port Table, and returns the BTIM bitmap.
// It exists as a fault-injection point for the cross-validation
// harness — a broken computer must be caught by both the differential
// oracle and the BTIM invariant. A nil fn restores Algorithm 1.
func (a *AP) SetFlagComputer(fn func(bufferedPorts []uint16, table *porttable.Table) *dot11.VirtualBitmap) {
	a.flagFn = fn
	a.dirty = true
}

// Table exposes the Client UDP Port Table (read-mostly; used by tests
// and tooling).
func (a *AP) Table() *porttable.Table { return a.table }

// SetRoamPortLookup installs the distribution-system port lookup used
// at reassociation time: when a station roams in, the AP asks the ESS
// for a replicated port set and seeds its Client UDP Port Table from
// it, closing the resync window a cold handoff would leave open. A
// nil fn (the default) disables warm seeding.
func (a *AP) SetRoamPortLookup(fn func(addr dot11.MACAddr) []uint16) { a.roamPorts = fn }

// SetPortSync installs the distribution-system export hook: every
// port set the AP learns from the air (association seeds and UDP Port
// Messages) is reported so the ESS can replicate it to sibling APs.
// The callback runs synchronously on the shard's event loop and must
// not mutate the AP; the ports slice is only valid for the call.
func (a *AP) SetPortSync(fn func(addr dot11.MACAddr, ports []uint16)) { a.portSync = fn }

// Associate registers a station and returns its AID. hideCapable marks
// stations that understand the BTIM element.
func (a *AP) Associate(addr dot11.MACAddr, hideCapable bool) (dot11.AID, error) {
	if _, ok := a.clients[addr]; ok {
		return 0, fmt.Errorf("ap: %v already associated", addr)
	}
	if !a.nextAID.Valid() {
		return 0, fmt.Errorf("ap: association table full")
	}
	c := &client{addr: addr, aid: a.nextAID, hideCapable: hideCapable, psMode: true}
	a.nextAID++
	a.clients[addr] = c
	a.byAID[c.aid] = c
	a.dirty = true
	return c.aid, nil
}

// FreeAIDs returns the number of AIDs the sequential allocator can
// still hand out.
func (a *AP) FreeAIDs() int {
	if !a.nextAID.Valid() {
		return 0
	}
	return int(dot11.MaxAID) - int(a.nextAID) + 1
}

// AssociateCohort registers count stations whose MAC addresses follow
// consecutively from base (dot11.AddrAdd) and returns the first AID of
// the resulting contiguous AID block. Every member gets its own
// association and port-table entry — the sequential allocator makes
// the block contiguous for free — so the AP-side state transitions are
// bit-identical to count individually-modeled stations; only the
// station side folds the members into one scheduled entity.
func (a *AP) AssociateCohort(base dot11.MACAddr, count int, hideCapable bool) (dot11.AID, error) {
	if count < 1 {
		return 0, fmt.Errorf("ap: cohort count %d < 1", count)
	}
	if free := a.FreeAIDs(); count > free {
		return 0, fmt.Errorf("ap: cohort of %d exceeds %d free AIDs", count, free)
	}
	first, err := a.Associate(base, hideCapable)
	if err != nil {
		return 0, err
	}
	for i := 1; i < count; i++ {
		if _, err := a.Associate(dot11.AddrAdd(base, i), hideCapable); err != nil {
			return 0, fmt.Errorf("ap: cohort member %d: %w", i, err)
		}
	}
	return first, nil
}

// AssociateAggregate registers a single association standing for count
// stations — the beyond-AID-space regime for 10⁵–10⁶ client runs. The
// representative behaves as one station on the air (one AID, one TIM
// bit, one port-message stream); Members folds the multiplicity back
// into population counts.
func (a *AP) AssociateAggregate(base dot11.MACAddr, count int, hideCapable bool) (dot11.AID, error) {
	if count < 1 {
		return 0, fmt.Errorf("ap: aggregate count %d < 1", count)
	}
	aid, err := a.Associate(base, hideCapable)
	if err != nil {
		return 0, err
	}
	a.clients[base].count = count
	return aid, nil
}

// Members returns the number of stations the AP's associations stand
// for, counting aggregate representatives with their multiplicity
// (compare Clients, which counts associations).
func (a *AP) Members() int {
	n := 0
	for _, c := range a.clients {
		if c.count > 1 {
			n += c.count
		} else {
			n++
		}
	}
	return n
}

// Disassociate removes a station and its port-table entries.
func (a *AP) Disassociate(addr dot11.MACAddr) {
	c, ok := a.clients[addr]
	if !ok {
		return
	}
	a.table.Remove(c.aid)
	delete(a.byAID, c.aid)
	delete(a.clients, addr)
	a.dirty = true
}

// AIDOf returns the AID the AP assigned to a station, or false when
// the station is not associated.
func (a *AP) AIDOf(addr dot11.MACAddr) (dot11.AID, bool) {
	c, ok := a.clients[addr]
	if !ok {
		return 0, false
	}
	return c.aid, true
}

// ClientInfo is one row of the AP's association table, snapshotted for
// the control plane.
type ClientInfo struct {
	Addr        dot11.MACAddr
	AID         dot11.AID
	HIDECapable bool
	PSMode      bool
	// Members is the number of stations this association stands for
	// (>1 for aggregate-cohort representatives).
	Members int
	// BufferedUnicast is the client's buffered downlink frame count.
	BufferedUnicast int
}

// ClientList snapshots the association table in ascending AID order —
// a stable order for the control plane and for drain-time fan-out.
func (a *AP) ClientList() []ClientInfo {
	out := make([]ClientInfo, 0, len(a.clients))
	for _, c := range a.clients {
		members := c.count
		if members < 1 {
			members = 1
		}
		out = append(out, ClientInfo{
			Addr:            c.addr,
			AID:             c.aid,
			HIDECapable:     c.hideCapable,
			PSMode:          c.psMode,
			Members:         members,
			BufferedUnicast: len(c.unicast),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AID < out[j].AID })
	return out
}

// BeginDrain starts a graceful shutdown: from now on association and
// reassociation requests are refused with StatusAPFull, so no new
// clients arrive while the daemon tears down.
func (a *AP) BeginDrain() { a.draining = true }

// Draining reports whether BeginDrain was called.
func (a *AP) Draining() bool { return a.draining }

// DisassociateClient sends a real disassociation frame to one station
// (Addr1 = station, Addr2/Addr3 = BSSID) and removes its association
// and port-table state. It is the AP-initiated mirror of the
// station's Leave and is used for drain fan-out and liveness
// evictions. Reports false when the station is not associated.
func (a *AP) DisassociateClient(addr dot11.MACAddr, reason uint16) bool {
	if _, ok := a.clients[addr]; !ok {
		return false
	}
	d := &dot11.Disassoc{
		Header: dot11.MACHeader{
			Addr1: addr, Addr2: a.cfg.BSSID, Addr3: a.cfg.BSSID,
			Seq: a.nextSeq(),
		},
		Reason: reason,
	}
	a.med.Transmit(a.cfg.BSSID, d.Marshal(), a.cfg.BeaconRate)
	a.stats.DisassocsSent++
	a.Disassociate(addr)
	return true
}

// DisassociateAll disassociates every client with a real frame, in
// ascending AID order for deterministic fan-out, and returns how many
// frames went out. Part of the drain sequence: BeginDrain, flush, then
// DisassociateAll before the daemon exits.
func (a *AP) DisassociateAll(reason uint16) int {
	n := 0
	for _, ci := range a.ClientList() {
		if a.DisassociateClient(ci.Addr, reason) {
			n++
		}
	}
	return n
}

// Start schedules the beacon loop. The first beacon goes out one
// beacon interval after the current virtual time.
func (a *AP) Start() {
	a.dtim = 0 // first beacon is a DTIM
	a.eng.MustScheduleAfter(a.cfg.BeaconInterval, a.tickFn)
}

// EnqueueGroup accepts a group-addressed (broadcast) UDP datagram from
// the distribution system. It is buffered until the next DTIM, per the
// 802.11 rule that group traffic is buffered while any client is in PS
// mode (in this simulation PS clients always exist).
func (a *AP) EnqueueGroup(d dot11.UDPDatagram, rate dot11.Rate) {
	body := dot11.EncapsulateUDP(d)
	a.group = append(a.group, bufferedGroup{
		payload: body, rate: rate, dstPort: d.DstPort, ok: true,
	})
	a.stats.GroupFramesEnqueued++
	a.dirty = true
}

// EnqueueUnicast buffers a unicast data frame for a PS-mode client;
// the next beacon's TIM will carry the client's bit. With the
// FilterUnicast extension enabled, frames to a HIDE client's closed
// UDP ports are dropped here instead.
func (a *AP) EnqueueUnicast(dst dot11.MACAddr, d dot11.UDPDatagram, rate dot11.Rate) error {
	c, ok := a.clients[dst]
	if !ok {
		return fmt.Errorf("ap: %v not associated", dst)
	}
	a.stats.UnicastEnqueued++
	if a.cfg.HIDE && a.cfg.FilterUnicast && c.hideCapable && !a.table.Listening(d.DstPort, c.aid) {
		a.stats.UnicastFiltered++
		return nil
	}
	frame := &dot11.DataFrame{
		Header: dot11.MACHeader{
			FC:    dot11.FrameControl{FromDS: true},
			Addr1: dst, Addr2: a.cfg.BSSID, Addr3: a.cfg.BSSID,
			Seq: a.nextSeq(),
		},
		Payload: dot11.EncapsulateUDP(d),
	}
	c.unicast = append(c.unicast, frame.Marshal())
	a.dirty = true
	return nil
}

// Restart models an AP power-cycle that loses all soft state: the
// Client UDP Port Table, buffered group and unicast frames, and the
// TSF timer — the beacon timestamp restarts from zero, which is how
// stations detect the restart and re-register their open ports.
// Associations survive (as with APs that persist them across a fast
// reboot; a full re-association is modelled with Disassociate +
// StartAssociation instead). Wiped frames are counted in
// GroupFramesLost/UnicastFramesLost so the conservation equations keep
// closing, and the DTIM cycle restarts at the next beacon.
func (a *AP) Restart() {
	a.bootAt = a.eng.Now()
	a.table = porttable.New()
	a.stats.GroupFramesLost += len(a.group)
	a.group = a.group[:0]
	for _, c := range a.clients {
		a.stats.UnicastFramesLost += len(c.unicast)
		c.unicast = nil
	}
	a.dtim = 0
	a.stats.Restarts++
	a.dirty = true
}

// beaconTick emits one beacon and, on DTIMs, flushes group traffic.
func (a *AP) beaconTick(now time.Duration) {
	// TTL sweep before the beacon is built, so an expired client is
	// never indicated in the BTIM it can no longer want.
	if a.cfg.PortTTL > 0 && now > a.cfg.PortTTL {
		a.stats.PortEntriesExpired += len(a.table.ExpireBefore(now - a.cfg.PortTTL))
	}
	isDTIM := a.dtim == 0
	beacon, raw := a.encodeBeacon(now, isDTIM)
	if a.obs != nil {
		ports, unparsed := a.bufferedPorts()
		a.obs.BeaconBuilt(now, BeaconView{
			Beacon:           beacon,
			IsDTIM:           isDTIM,
			BufferedPorts:    ports,
			UnparsedBuffered: unparsed,
		})
	}
	a.med.Transmit(a.cfg.BSSID, raw, a.cfg.BeaconRate)
	a.stats.BeaconsSent++
	if isDTIM {
		a.stats.DTIMsSent++
		a.flushGroup()
		a.dtim = a.cfg.DTIMPeriod - 1
	} else {
		a.dtim--
	}
	a.eng.MustScheduleAfter(a.cfg.BeaconInterval, a.tickFn)
}

// encodeBeacon returns the beacon for this tick, rebuilding from
// scratch when beacon-relevant state changed and otherwise patching the
// cached bytes in place. The medium copies the frame at Transmit, so
// handing out the cache's buffer is safe.
func (a *AP) encodeBeacon(now time.Duration, isDTIM bool) (*dot11.Beacon, []byte) {
	bc := &a.cache
	if !bc.valid || a.dirty || a.flagFn != nil || a.table.Gen() != bc.tableGen {
		a.rebuildBeacon(now, isDTIM)
	} else {
		a.patchBeacon(now, isDTIM)
	}
	if a.cfg.HIDE {
		a.stats.BTIMBytesSent += bc.btimCost
	}
	return &bc.beacon, bc.raw
}

// rebuildBeacon assembles the beacon with TIM and (for HIDE APs) BTIM
// from current state and refreshes the cache: encoded bytes, the
// element offsets the patch path writes to, and the generation stamps
// that gate reuse.
func (a *AP) rebuildBeacon(now time.Duration, isDTIM bool) {
	bc := &a.cache
	// TIM: unicast bits for clients with buffered frames; broadcast bit
	// on DTIM beacons when group frames are buffered.
	var ub dot11.VirtualBitmap
	for _, c := range a.clients {
		if len(c.unicast) > 0 {
			ub.Set(c.aid)
		}
	}
	off, pm := ub.Compress()
	bc.tim = dot11.TIM{
		DTIMCount:     uint8(a.dtim),
		DTIMPeriod:    uint8(a.cfg.DTIMPeriod),
		Broadcast:     isDTIM && len(a.group) > 0,
		BitmapOffset:  off,
		PartialBitmap: pm,
	}

	bc.beacon = dot11.Beacon{
		Header: dot11.MACHeader{
			Addr1: dot11.Broadcast, Addr2: a.cfg.BSSID, Addr3: a.cfg.BSSID,
			Seq: a.nextSeq(),
		},
		Timestamp:      uint64((now - a.bootAt) / time.Microsecond),
		BeaconInterval: uint16(a.cfg.BeaconInterval / dot11.TU),
		SSID:           a.cfg.SSID,
		TIM:            &bc.tim,
	}
	bc.btimCost = 0
	if a.cfg.HIDE {
		bc.btim = dot11.BTIMFromBitmap(a.broadcastFlags())
		bc.beacon.BTIM = &bc.btim
		bc.btimCost = len(bc.btim.PartialBitmap) + 3
	}
	raw, err := bc.beacon.Marshal()
	if err != nil {
		// Beacon construction is fully under AP control; failure is a bug.
		panic(fmt.Sprintf("ap: beacon marshal: %v", err))
	}
	bc.raw = raw
	bc.timOff = findTIMBody(raw)
	bc.ctlBase = raw[bc.timOff+2] &^ 0x01
	bc.tableGen = a.table.Gen()
	// A custom flag computer may be stateful (fault injection), so its
	// output cannot be cached.
	bc.valid = a.flagFn == nil
	a.dirty = false
}

// findTIMBody returns the offset of the TIM element body in a
// marshalled beacon. The TIM is always present in AP-built beacons.
func findTIMBody(raw []byte) int {
	p := dot11.MACHeaderLen + 12 // fixed fields: timestamp + interval + capability
	for p+2 <= len(raw) {
		if raw[p] == dot11.ElementIDTIM {
			return p + 2
		}
		p += 2 + int(raw[p+1])
	}
	panic("ap: marshalled beacon without TIM element")
}

// patchBeacon reuses the cached beacon bytes, rewriting only the fields
// that legitimately change between beacons with untouched state: the
// sequence number, the TSF timestamp, the TIM's DTIM count, and the TIM
// broadcast bit. Everything else is bit-identical to a from-scratch
// rebuild (the cache-invalidation tests assert exactly that), and this
// path performs zero allocations.
func (a *AP) patchBeacon(now time.Duration, isDTIM bool) {
	bc := &a.cache
	raw := bc.raw
	seq := a.nextSeq()
	raw[22] = byte(seq)
	raw[23] = byte(seq >> 8)
	ts := uint64((now - a.bootAt) / time.Microsecond)
	for i := 0; i < 8; i++ {
		raw[dot11.MACHeaderLen+i] = byte(ts >> (8 * i))
	}
	raw[bc.timOff] = uint8(a.dtim)
	bcast := isDTIM && len(a.group) > 0
	ctl := bc.ctlBase
	if bcast {
		ctl |= 0x01
	}
	raw[bc.timOff+2] = ctl
	// Keep the struct view (what observers see) in sync with the bytes.
	bc.beacon.Header.Seq = seq
	bc.beacon.Timestamp = ts
	bc.tim.DTIMCount = uint8(a.dtim)
	bc.tim.Broadcast = bcast
}

// broadcastFlags runs Algorithm 1: for every buffered group frame,
// fold the port's precomputed listener bitmap (the Client UDP Port
// Table's reverse index) into the flag set.
func (a *AP) broadcastFlags() *dot11.VirtualBitmap {
	if a.flagFn != nil {
		ports, _ := a.bufferedPorts()
		return a.flagFn(ports, a.table)
	}
	var flags dot11.VirtualBitmap
	for _, g := range a.group {
		if !g.ok {
			continue
		}
		a.table.OrListeners(g.dstPort, &flags)
	}
	return &flags
}

// bufferedPorts returns the destination ports of the buffered group
// frames with a parseable port, plus the count of unparseable ones.
func (a *AP) bufferedPorts() (ports []uint16, unparsed int) {
	for _, g := range a.group {
		if g.ok {
			ports = append(ports, g.dstPort)
		} else {
			unparsed++
		}
	}
	return ports, unparsed
}

// flushGroup transmits all buffered group frames after a DTIM beacon,
// setting the MoreData bit on all but the last.
func (a *AP) flushGroup() {
	if len(a.group) > 0 {
		a.dirty = true // broadcast buffer drains; BTIM and broadcast bit change
	}
	for i, g := range a.group {
		frame := &dot11.DataFrame{
			Header: dot11.MACHeader{
				FC: dot11.FrameControl{
					FromDS:   true,
					MoreData: i < len(a.group)-1,
				},
				Addr1: dot11.Broadcast, Addr2: a.cfg.BSSID, Addr3: a.cfg.BSSID,
				Seq: a.nextSeq(),
			},
			Payload: g.payload,
		}
		a.med.Transmit(a.cfg.BSSID, frame.Marshal(), g.rate)
		a.stats.GroupFramesSent++
	}
	a.group = a.group[:0]
}

// Receive implements medium.Node: the AP's frame demultiplexer.
func (a *AP) Receive(raw []byte, rate dot11.Rate, now time.Duration) {
	switch dot11.Classify(raw) {
	case dot11.KindAssocRequest:
		a.handleAssocRequest(raw, now)
	case dot11.KindReassocRequest:
		a.handleReassocRequest(raw, now)
	case dot11.KindDisassoc:
		if d, err := dot11.UnmarshalDisassoc(raw); err == nil {
			a.Disassociate(d.Header.Addr2)
			a.stats.Disassociations++
		}
	case dot11.KindUDPPortMessage:
		a.handlePortMessage(raw, now)
	case dot11.KindPSPoll:
		a.handlePSPoll(raw)
	case dot11.KindData:
		// Uplink data would be forwarded to the distribution system;
		// the broadcast study doesn't model it further.
	}
}

// handleAssocRequest performs the frame-level association exchange: it
// allocates (or re-confirms, for retries) the station's AID, seeds the
// port table from an included Open UDP Ports element, and responds.
func (a *AP) handleAssocRequest(raw []byte, now time.Duration) {
	req, err := dot11.UnmarshalAssocRequest(raw)
	if err != nil {
		return
	}
	addr := req.Header.Addr2
	resp := &dot11.AssocResponse{
		Header: dot11.MACHeader{
			Addr1: addr, Addr2: a.cfg.BSSID, Addr3: a.cfg.BSSID,
			Seq: a.nextSeq(),
		},
		Status:        dot11.StatusSuccess,
		HIDESupported: a.cfg.HIDE,
	}
	c, ok := a.clients[addr]
	if !ok && a.draining {
		// A draining AP takes no new clients; StatusAPFull tells the
		// station to back off and try elsewhere.
		resp.Status = dot11.StatusAPFull
		a.stats.AssocsRejectedDraining++
	} else if !ok {
		aid, err := a.Associate(addr, req.HIDECapable)
		if err != nil {
			resp.Status = dot11.StatusAPFull
		} else {
			c = a.clients[addr]
			_ = aid
		}
	}
	if c != nil {
		resp.AID = c.aid
		if a.cfg.HIDE && req.Ports != nil {
			a.table.UpdateAt(c.aid, req.Ports, now)
			if a.portSync != nil {
				a.portSync(addr, req.Ports)
			}
		}
	}
	a.stats.AssocResponses++
	out, err := resp.Marshal()
	if err != nil {
		panic(fmt.Sprintf("ap: assoc response marshal: %v", err))
	}
	a.med.Transmit(a.cfg.BSSID, out, a.cfg.BeaconRate)
}

// handleReassocRequest serves a station roaming in from another AP of
// the ESS. The exchange mirrors association — allocate an AID,
// respond — with one difference: the station's host is suspended
// during a firmware-level roam, so the request carries no Open UDP
// Ports element. The AP instead consults the distribution system
// (SetRoamPortLookup) for a replicated port set; without one the
// station's BTIM filtering stays conservative (no entry → no wanted
// frames indicated) until its next UDP Port Message — the cold-roam
// resync window the ESS experiments quantify.
func (a *AP) handleReassocRequest(raw []byte, now time.Duration) {
	req, err := dot11.UnmarshalReassocRequest(raw)
	if err != nil {
		return
	}
	addr := req.Header.Addr2
	resp := &dot11.ReassocResponse{
		Header: dot11.MACHeader{
			Addr1: addr, Addr2: a.cfg.BSSID, Addr3: a.cfg.BSSID,
			Seq: a.nextSeq(),
		},
		Status:        dot11.StatusSuccess,
		HIDESupported: a.cfg.HIDE,
	}
	c, ok := a.clients[addr]
	if !ok && a.draining {
		resp.Status = dot11.StatusAPFull
		a.stats.AssocsRejectedDraining++
	} else if !ok {
		if _, err := a.Associate(addr, req.HIDECapable); err != nil {
			resp.Status = dot11.StatusAPFull
		} else {
			c = a.clients[addr]
		}
	}
	if c != nil {
		resp.AID = c.aid
		if a.cfg.HIDE {
			// An empty port set means the request carried no port state
			// (a firmware roam signals HIDE capability with an empty
			// element), NOT a deregistration — deregistration happens via
			// UDP Port Messages. Only a non-empty set overrides the
			// distribution system's replicated entry.
			if len(req.Ports) > 0 {
				a.table.UpdateAt(c.aid, req.Ports, now)
				if a.portSync != nil {
					a.portSync(addr, req.Ports)
				}
			} else if a.roamPorts != nil {
				if ports := a.roamPorts(addr); ports != nil {
					a.table.UpdateAt(c.aid, ports, now)
					a.stats.PortsSeededOnRoam += len(ports)
				}
			}
		}
	}
	a.stats.Reassociations++
	out, err := resp.Marshal()
	if err != nil {
		panic(fmt.Sprintf("ap: reassoc response marshal: %v", err))
	}
	a.med.Transmit(a.cfg.BSSID, out, a.cfg.BeaconRate)
}

// handlePortMessage updates the port table and ACKs the sender. The
// arrival time stamps the entry's TTL clock.
func (a *AP) handlePortMessage(raw []byte, now time.Duration) {
	msg, err := dot11.UnmarshalUDPPortMessage(raw)
	if err != nil {
		return // malformed frames are dropped silently, like real MACs
	}
	c, ok := a.clients[msg.Header.Addr2]
	if !ok {
		return // not associated; no state to update, no ACK
	}
	if a.cfg.HIDE {
		a.table.UpdateAt(c.aid, msg.Ports, now)
		if a.portSync != nil {
			a.portSync(c.addr, msg.Ports)
		}
	}
	a.stats.PortMsgsReceived++
	ack := &dot11.ACK{RA: c.addr}
	a.med.Transmit(a.cfg.BSSID, ack.Marshal(), a.cfg.BeaconRate)
	a.stats.ACKsSent++
}

// handlePSPoll delivers one buffered unicast frame to the polling
// client, setting MoreData if more remain.
func (a *AP) handlePSPoll(raw []byte) {
	poll, err := dot11.UnmarshalPSPoll(raw)
	if err != nil {
		return
	}
	c, ok := a.byAID[poll.AID]
	if !ok || c.addr != poll.TA || len(c.unicast) == 0 {
		return
	}
	frame := c.unicast[0]
	c.unicast = c.unicast[1:]
	a.dirty = true // TIM unicast bit may clear
	if len(c.unicast) > 0 {
		// Patch the MoreData bit in the stored raw frame.
		fc := dot11.UnmarshalFrameControl([2]byte{frame[0], frame[1]})
		fc.MoreData = true
		b := fc.Marshal()
		frame[0], frame[1] = b[0], b[1]
	}
	a.med.Transmit(a.cfg.BSSID, frame, a.cfg.BeaconRate)
	a.stats.PSPollsServed++
}

// nextSeq returns the next sequence-control value.
func (a *AP) nextSeq() uint16 {
	s := a.seq
	a.seq = (a.seq + 1) & 0x0fff
	return s << 4
}

// BufferedGroupFrames returns the number of group frames currently
// buffered (the paper's n_f when sampled at DTIM boundaries).
func (a *AP) BufferedGroupFrames() int { return len(a.group) }

// PendingUnicast returns the number of buffered unicast frames across
// all clients, closing the unicast conservation equation
// (UnicastEnqueued = PSPollsServed + UnicastFiltered + PendingUnicast).
func (a *AP) PendingUnicast() int {
	n := 0
	for _, c := range a.clients {
		n += len(c.unicast)
	}
	return n
}
