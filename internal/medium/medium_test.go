package medium

import (
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/sim"
)

type recorder struct {
	frames []recorded
}

type recorded struct {
	raw  []byte
	rate dot11.Rate
	at   time.Duration
}

func (r *recorder) Receive(raw []byte, rate dot11.Rate, at time.Duration) {
	r.frames = append(r.frames, recorded{append([]byte(nil), raw...), rate, at})
}

var (
	apAddr = dot11.MACAddr{2, 0, 0, 0, 0, 1}
	s1Addr = dot11.MACAddr{2, 0, 0, 0, 0, 0x10}
	s2Addr = dot11.MACAddr{2, 0, 0, 0, 0, 0x20}
)

func beaconRaw(t *testing.T) []byte {
	t.Helper()
	b := &dot11.Beacon{
		Header:         dot11.MACHeader{Addr1: dot11.Broadcast, Addr2: apAddr, Addr3: apAddr},
		BeaconInterval: 100,
		SSID:           "t",
	}
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestBroadcastDelivery(t *testing.T) {
	eng := sim.New()
	m := New(eng, dot11.DefaultPHY(), 1)
	r1, r2 := &recorder{}, &recorder{}
	m.Attach(apAddr, &recorder{})
	m.Attach(s1Addr, r1)
	m.Attach(s2Addr, r2)

	raw := beaconRaw(t)
	m.Transmit(apAddr, raw, dot11.Rate1Mbps)
	eng.Run()

	if len(r1.frames) != 1 || len(r2.frames) != 1 {
		t.Fatalf("deliveries: s1=%d s2=%d, want 1 each", len(r1.frames), len(r2.frames))
	}
	// Sender must not hear its own frame.
	if m.Stats.Deliveries != 2 {
		t.Errorf("Deliveries = %d, want 2", m.Stats.Deliveries)
	}
}

func TestUnicastDelivery(t *testing.T) {
	eng := sim.New()
	m := New(eng, dot11.DefaultPHY(), 1)
	r1, r2 := &recorder{}, &recorder{}
	m.Attach(s1Addr, r1)
	m.Attach(s2Addr, r2)

	ack := &dot11.ACK{RA: s1Addr}
	m.Transmit(apAddr, ack.Marshal(), dot11.Rate1Mbps)
	eng.Run()

	if len(r1.frames) != 1 {
		t.Fatalf("addressee received %d frames, want 1", len(r1.frames))
	}
	if len(r2.frames) != 0 {
		t.Fatalf("bystander received %d frames, want 0", len(r2.frames))
	}
}

func TestAirtimeTiming(t *testing.T) {
	eng := sim.New()
	m := New(eng, dot11.DefaultPHY(), 1)
	r1 := &recorder{}
	m.Attach(s1Addr, r1)

	ack := &dot11.ACK{RA: s1Addr}
	raw := ack.Marshal()
	m.Transmit(apAddr, raw, dot11.Rate1Mbps)
	eng.Run()

	// ACK: 10 marshalled bytes + 4 FCS = 14 bytes = 112 bits at 1 Mb/s
	// plus 192 µs preamble plus 1 µs propagation.
	want := 192*time.Microsecond + 112*time.Microsecond + time.Microsecond
	if len(r1.frames) != 1 || r1.frames[0].at != want {
		t.Fatalf("delivery at %v, want %v", r1.frames[0].at, want)
	}
}

func TestChannelSerialization(t *testing.T) {
	eng := sim.New()
	phy := dot11.DefaultPHY()
	m := New(eng, phy, 1)
	r1 := &recorder{}
	m.Attach(s1Addr, r1)

	ack := &dot11.ACK{RA: s1Addr}
	raw := ack.Marshal()
	// Two back-to-back transmissions: the second must wait for the
	// first plus a DIFS.
	m.Transmit(apAddr, raw, dot11.Rate1Mbps)
	m.Transmit(s2Addr, raw, dot11.Rate1Mbps)
	eng.Run()

	if len(r1.frames) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(r1.frames))
	}
	air := m.Airtime(len(raw), dot11.Rate1Mbps)
	gap := r1.frames[1].at - r1.frames[0].at
	if gap != air+phy.DIFS {
		t.Errorf("second delivery gap = %v, want airtime %v + DIFS %v", gap, air, phy.DIFS)
	}
}

func TestLossInjection(t *testing.T) {
	eng := sim.New()
	m := New(eng, dot11.DefaultPHY(), 7)
	if err := m.SetLoss(0.5); err != nil {
		t.Fatal(err)
	}
	r1 := &recorder{}
	m.Attach(s1Addr, r1)
	ack := &dot11.ACK{RA: s1Addr}
	const n = 1000
	for i := 0; i < n; i++ {
		m.Transmit(apAddr, ack.Marshal(), dot11.Rate1Mbps)
	}
	eng.Run()
	got := len(r1.frames)
	if got < 400 || got > 600 {
		t.Errorf("with 50%% loss, %d of %d delivered", got, n)
	}
	if m.Stats.Losses+m.Stats.Deliveries != n {
		t.Errorf("loss+delivery = %d, want %d", m.Stats.Losses+m.Stats.Deliveries, n)
	}
}

func TestSetLossValidation(t *testing.T) {
	m := New(sim.New(), dot11.DefaultPHY(), 1)
	if err := m.SetLoss(-0.1); err == nil {
		t.Error("negative loss accepted")
	}
	if err := m.SetLoss(1.0); err == nil {
		t.Error("loss of 1.0 accepted")
	}
}

func TestUnattachedDestinationDropped(t *testing.T) {
	eng := sim.New()
	m := New(eng, dot11.DefaultPHY(), 1)
	ack := &dot11.ACK{RA: s1Addr} // s1 never attached
	m.Transmit(apAddr, ack.Marshal(), dot11.Rate1Mbps)
	eng.Run()
	if m.Stats.Deliveries != 0 {
		t.Errorf("Deliveries = %d, want 0", m.Stats.Deliveries)
	}
}

func TestTransmitCopiesBuffer(t *testing.T) {
	eng := sim.New()
	m := New(eng, dot11.DefaultPHY(), 1)
	r1 := &recorder{}
	m.Attach(s1Addr, r1)
	ack := &dot11.ACK{RA: s1Addr}
	raw := ack.Marshal()
	m.Transmit(apAddr, raw, dot11.Rate1Mbps)
	for i := range raw {
		raw[i] = 0xff // caller reuses the buffer before delivery
	}
	eng.Run()
	if len(r1.frames) != 1 {
		t.Fatal("frame not delivered")
	}
	if r1.frames[0].raw[0] == 0xff {
		t.Error("medium aliased the caller's buffer")
	}
}

func TestMonitorTapSeesAllTransmissions(t *testing.T) {
	eng := sim.New()
	m := New(eng, dot11.DefaultPHY(), 1)
	m.Attach(s1Addr, &recorder{})
	var tapped []recorded
	m.SetTap(func(raw []byte, rate dot11.Rate, at time.Duration) {
		tapped = append(tapped, recorded{append([]byte(nil), raw...), rate, at})
	})
	// One unicast to an attached node, one to nobody: the tap sees both.
	m.Transmit(apAddr, (&dot11.ACK{RA: s1Addr}).Marshal(), dot11.Rate1Mbps)
	m.Transmit(apAddr, (&dot11.ACK{RA: s2Addr}).Marshal(), dot11.Rate11Mbps)
	eng.Run()
	if len(tapped) != 2 {
		t.Fatalf("tap saw %d frames, want 2", len(tapped))
	}
	if tapped[0].rate != dot11.Rate1Mbps || tapped[1].rate != dot11.Rate11Mbps {
		t.Error("tap rates wrong")
	}
	// Tap fires at start of airtime, before delivery.
	if tapped[0].at != 0 {
		t.Errorf("tap time = %v, want transmission start", tapped[0].at)
	}
	m.SetTap(nil)
	m.Transmit(apAddr, (&dot11.ACK{RA: s1Addr}).Marshal(), dot11.Rate1Mbps)
	eng.Run()
	if len(tapped) != 2 {
		t.Error("nil tap still invoked")
	}
}
