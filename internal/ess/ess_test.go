package ess

import (
	"encoding/binary"
	"hash"
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/engine"
	"repro/internal/station"
	"repro/internal/trace"
)

// testTrace generates a truncated scenario trace through the shared
// memoized cache.
func testTrace(t *testing.T, s trace.Scenario, d time.Duration) *trace.Trace {
	t.Helper()
	cfg := trace.ScenarioConfig(s)
	if d > 0 && d < cfg.Duration {
		cfg.Duration = d
	}
	tr, err := engine.Traces.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// digest fingerprints one medium's frame stream.
type digest struct {
	h      hash.Hash64
	frames int
}

func newDigest() *digest { return &digest{h: fnv.New64a()} }

func (d *digest) tap(raw []byte, rate dot11.Rate, at time.Duration) {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(at))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(rate))
	//lint:ignore errdrop hash.Hash writes never fail
	d.h.Write(hdr[:])
	//lint:ignore errdrop hash.Hash writes never fail
	d.h.Write(raw)
	d.frames++
}

// tapShards installs a digest on every shard medium and returns them
// in shard order.
func tapShards(e *ESS) []*digest {
	var out []*digest
	for _, sh := range e.Shards() {
		d := newDigest()
		sh.Net.Medium.SetTap(d.tap)
		out = append(out, d)
	}
	return out
}

func TestK1RoamFreeMatchesNetwork(t *testing.T) {
	tr := testTrace(t, trace.Starbucks, 90*time.Second)
	open := []uint16{5353, 17500}

	ncfg := core.NetworkConfig{DTIMPeriod: 1, HIDE: true, Seed: 7}
	n, err := core.NewNetwork(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	nd := newDigest()
	n.Medium.SetTap(nd.tap)
	var nsts []*station.Station
	for i := 0; i < 3; i++ {
		st, err := n.AddStation(station.HIDE, open)
		if err != nil {
			t.Fatal(err)
		}
		nsts = append(nsts, st)
	}
	if err := n.Replay(tr); err != nil {
		t.Fatal(err)
	}

	e, err := New(Config{APs: 1, Network: ncfg})
	if err != nil {
		t.Fatal(err)
	}
	ed := tapShards(e)[0]
	for i := 0; i < 3; i++ {
		if _, err := e.AddStation(station.HIDE, open, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(tr); err != nil {
		t.Fatal(err)
	}

	if nd.frames != ed.frames || nd.h.Sum64() != ed.h.Sum64() {
		t.Fatalf("K=1 ESS diverged from Network: %d/%016x vs %d/%016x",
			ed.frames, ed.h.Sum64(), nd.frames, nd.h.Sum64())
	}
	for i, st := range e.Stations() {
		if st.Stats() != nsts[i].Stats() {
			t.Fatalf("station %d stats diverged:\ness:     %+v\nnetwork: %+v", i, st.Stats(), nsts[i].Stats())
		}
	}
}

func TestRoamsHappenAndReassociate(t *testing.T) {
	tr := testTrace(t, trace.Starbucks, 2*time.Minute)
	e, err := New(Config{
		APs:      4,
		Network:  core.NetworkConfig{DTIMPeriod: 1, HIDE: true, Harden: true, Seed: 11},
		RoamRate: 4, // roams per station per minute: plenty in 2 min
		RoamSeed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := e.AddStation(station.HIDE, []uint16{5353}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(tr); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Roams == 0 {
		t.Fatal("no roams at RoamRate=4 over 2 minutes")
	}
	if s.Reassociations < s.Roams {
		t.Fatalf("reassociations %d < roams %d", s.Reassociations, s.Roams)
	}
	// Every station must end the run associated somewhere: roams are
	// spread over the run, and each reassociation completes within its
	// window (the retry budget covers lost responses on a clean medium).
	for i, st := range e.Stations() {
		if !st.Associated() {
			t.Fatalf("station %d unassociated after churn run", i)
		}
	}
}

func TestColdVsReplicatedResyncWindow(t *testing.T) {
	base := ChurnConfig{
		APs:      4,
		Stations: 16,
		Scenario: trace.Classroom,
		Duration: 2 * time.Minute,
		RoamRate: 2,
		Seed:     5,
	}
	cold := base
	cold.Replicate = false
	warm := base
	warm.Replicate = true

	cr, err := RunChurn(cold)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := RunChurn(warm)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Stats.Roams == 0 || wr.Stats.Roams == 0 {
		t.Fatalf("no churn: cold %d roams, warm %d roams", cr.Stats.Roams, wr.Stats.Roams)
	}
	if cr.Stats.ResyncWindowMisses == 0 {
		t.Fatal("cold handoffs recorded no resync-window misses (expected a real window)")
	}
	if wr.Stats.ResyncWindowMisses != 0 {
		t.Fatalf("replicated handoffs recorded %d resync-window misses, want 0", wr.Stats.ResyncWindowMisses)
	}
	if wr.Stats.DSRecordsReplicated == 0 || wr.Stats.PortsSeededOnRoam == 0 {
		t.Fatalf("replication inert: %d records, %d seeded ports",
			wr.Stats.DSRecordsReplicated, wr.Stats.PortsSeededOnRoam)
	}
	if cr.Stats.DSRecordsReplicated != 0 {
		t.Fatalf("cold run replicated %d records", cr.Stats.DSRecordsReplicated)
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	run := func(workers int) ([]uint64, Stats) {
		tr := testTrace(t, trace.Starbucks, 90*time.Second)
		e, err := New(Config{
			APs:       3,
			Network:   core.NetworkConfig{DTIMPeriod: 1, HIDE: true, Harden: true, Seed: 3},
			Replicate: true,
			RoamRate:  3,
			RoamSeed:  42,
			DSLoss:    0.2,
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		ds := tapShards(e)
		for i := 0; i < 6; i++ {
			if _, err := e.AddStation(station.HIDE, []uint16{5353, 53}, 1); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.AddCohort(station.HIDE, []uint16{5353}, 4, 1); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(tr); err != nil {
			t.Fatal(err)
		}
		fps := make([]uint64, len(ds))
		for i, d := range ds {
			fps[i] = d.h.Sum64()
		}
		return fps, e.Stats()
	}

	fp1, st1 := run(1)
	fp4, st4 := run(4)
	if st1 != st4 {
		t.Fatalf("stats diverged across worker counts:\n1: %+v\n4: %+v", st1, st4)
	}
	for i := range fp1 {
		if fp1[i] != fp4[i] {
			t.Fatalf("shard %d fingerprint diverged: %016x vs %016x", i, fp1[i], fp4[i])
		}
	}
}

func TestCohortHandoff(t *testing.T) {
	tr := testTrace(t, trace.Starbucks, 2*time.Minute)
	e, err := New(Config{
		APs:       2,
		Network:   core.NetworkConfig{DTIMPeriod: 1, HIDE: true, Harden: true, Seed: 13},
		Replicate: true,
		RoamRate:  6,
		RoamSeed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.AddCohort(station.HIDE, []uint16{5353}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(tr); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.CohortRoams == 0 {
		t.Fatalf("no cohort roams (stats %+v)", s)
	}
	if c.Count() != 5 {
		t.Fatalf("cohort width changed: %d", c.Count())
	}
	// The roamed-to AP must know every member.
	home := e.Shards()[e.members[0].shard].Net.AP
	for i := 0; i < 5; i++ {
		found := false
		for _, sh := range e.Shards() {
			if sh.Net.AP == home {
				found = true
			}
		}
		if !found {
			t.Fatal("cohort's home AP not among shards")
		}
	}
	if home.Members() < 5 {
		t.Fatalf("home AP holds %d members, want ≥5", home.Members())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Network: core.NetworkConfig{BSSID: dot11.MACAddr{1}}}); err == nil {
		t.Error("explicit Network.BSSID accepted")
	}
	if _, err := New(Config{APs: maxAPs + 1}); err == nil {
		t.Error("oversized AP count accepted")
	}
}
