package control

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzControlRequest drives adversarial bodies through the full
// POST /v1/fault handler stack — HTTP routing, strict JSON decode,
// PlanSpec compilation — and asserts the daemon-facing invariants: no
// panic ever, and a body the handler accepts (200) always re-validates
// into a buildable plan. The seed corpus covers every combinator, the
// clear request, and the classic malformed shapes.
func FuzzControlRequest(f *testing.F) {
	seeds := []string{
		`{"clear":true}`,
		`{"seed":7,"plan":{"kind":"loss","p":0.5}}`,
		`{"plan":{"kind":"corrupt","p":1}}`,
		`{"plan":{"kind":"duplicate","p":0.01}}`,
		`{"plan":{"kind":"gilbert-elliott","p_good_bad":0.1,"p_bad_good":0.4,"loss_good":0.01,"loss_bad":0.9}}`,
		`{"plan":{"kind":"only","frames":["beacon","data"],"inner":{"kind":"loss","p":0.3}}}`,
		`{"plan":{"kind":"to","to":"02:1d:e0:aa:00:10","inner":{"kind":"loss","p":0.3}}}`,
		`{"plan":{"kind":"window","from_ms":100,"until_ms":400,"inner":{"kind":"loss","p":1}}}`,
		`{"plan":{"kind":"silence","to":"02:1d:e0:aa:00:10","from_ms":250}}`,
		`{"plan":{"kind":"compose","plans":[{"kind":"loss","p":0.1},{"kind":"corrupt","p":0.2}]}}`,
		``,
		`{`,
		`[]`,
		`null`,
		`"loss"`,
		`{"plan":null}`,
		`{"plan":{}}`,
		`{"plan":{"kind":"loss","p":1e308}}`,
		`{"plan":{"kind":"loss","p":-1}}`,
		`{"plan":{"kind":"window","inner":{"kind":"window","inner":{"kind":"loss"}}}}`,
		`{"clear":true,"plan":{"kind":"loss"}}`,
		`{"plan":{"kind":"compose","plans":[]}}`,
		`{"plan":{"kind":"to","to":"zz:zz","inner":{"kind":"loss"}}}`,
		`{"seed":18446744073709551615,"plan":{"kind":"loss","p":0}}`,
		strings.Repeat(`{"plan":{"kind":"window","until_ms":9,"inner":`, 40) + `x`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	backend := &stubBackend{counters: map[string]int64{}}
	srv := NewServer(backend)
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/fault", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req) // must not panic
		if rec.Code == http.StatusOK {
			// An accepted body decodes strictly and compiles.
			var fr FaultRequest
			if err := decodeJSON(body, &fr); err != nil {
				t.Fatalf("200 for body the decoder rejects: %v\n%s", err, body)
			}
			if _, err := fr.Validate(); err != nil {
				t.Fatalf("200 for plan that does not build: %v\n%s", err, body)
			}
		}
	})
}
