package lint

import (
	"go/ast"
	"strings"
)

// APIShim enforces the consolidated-surface convention of the public
// hide package: context-first functions are the canonical API, and any
// exported non-Context function that shadows a Context variant must be
// a documented compatibility shim — marked Deprecated: and reduced to
// a one-line delegation — so the legacy surface can never grow or
// drift. Adding a new exported FooOptions or bare Foo next to a
// FooContext without the shim shape is a lint failure; new API lands
// context-first only.
var APIShim = &Analyzer{
	Name: "apishim",
	Doc: "in the public hide package, an exported Foo or FooOptions alongside a " +
		"FooContext must be a Deprecated: one-line delegation to FooContext; " +
		"new exported entry points must be context-first",
	Run: runAPIShim,
}

func runAPIShim(p *Pass) error {
	if p.RelPath() != "" {
		return nil // only the module root carries the public surface
	}
	decls := make(map[string]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv != nil || !fn.Name.IsExported() {
				continue
			}
			decls[fn.Name.Name] = fn
		}
	}
	for name, fn := range decls {
		if strings.HasSuffix(name, "Context") {
			continue
		}
		target := shimTarget(decls, p, name)
		if target == "" {
			continue // no Context variant: an ordinary synchronous helper
		}
		if !isDeprecated(fn) {
			p.Reportf(fn.Pos(), "exported %s shadows %s but is not marked Deprecated:; the Context variant is the canonical entry point", name, target)
			continue
		}
		if !isOneLineDelegation(p, fn, target) {
			p.Reportf(fn.Pos(), "deprecated %s must be a one-line delegation to %s(context.Background(), ...)", name, target)
		}
	}
	return nil
}

// shimTarget resolves the Context variant a legacy name shadows:
// Foo and FooOptions both shadow FooContext.
func shimTarget(decls map[string]*ast.FuncDecl, p *Pass, name string) string {
	base := strings.TrimSuffix(name, "Options")
	for _, cand := range []string{name + "Context", base + "Context"} {
		if ctx, ok := decls[cand]; ok && firstParamIsContext(p, ctx) {
			return cand
		}
	}
	return ""
}

// isDeprecated reports whether fn's doc comment carries a Go-standard
// Deprecated: marker.
func isDeprecated(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, "Deprecated:") {
			return true
		}
	}
	return false
}
