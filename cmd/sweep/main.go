// Command sweep explores HIDE's savings landscape beyond the paper's
// five fixed traces: it time-scales one base trace across a range of
// densities and sweeps the useful fraction, printing the HIDE-vs-
// receive-all saving for every cell — the full picture the paper's
// Figures 7/8 sample five columns of. Output is a table or CSV for
// plotting.
//
// The (density × useful fraction) grid fans out over a worker pool
// (-parallel/-j, default GOMAXPROCS) with a deterministic reduction,
// and Ctrl-C cancels the sweep.
//
// Usage:
//
//	sweep [-device nexusone] [-base WRL] [-densities 0.25,0.5,1,2,4] [-useful 0.02,0.05,0.1,0.2] [-format table|csv] [-parallel N]
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/cli"
	"repro/internal/engine"
)

func main() {
	device := flag.String("device", "nexusone", "device profile: nexusone or galaxys4")
	base := flag.String("base", "WRL", "base scenario to time-scale")
	densities := flag.String("densities", "0.25,0.5,1,2,4", "density multipliers relative to the base trace")
	useful := flag.String("useful", "0.02,0.05,0.10,0.20,0.50", "useful fractions")
	format := flag.String("format", "table", "output: table or csv")
	workers := cli.WorkersFlag()
	flag.Parse()

	dev, err := hide.ProfileByName(map[string]string{
		"nexusone": "Nexus One", "galaxys4": "Galaxy S4",
	}[strings.ToLower(*device)])
	if err != nil {
		cli.Usagef("sweep", "%v", err)
	}
	var sc hide.Scenario
	found := false
	for _, s := range hide.Scenarios {
		if strings.EqualFold(s.String(), *base) {
			sc, found = s, true
			break
		}
	}
	if !found {
		cli.Usagef("sweep", "unknown scenario %q", *base)
	}
	dens, err := parseFloats(*densities)
	if err != nil {
		cli.Usagef("sweep", "%v", err)
	}
	fracs, err := parseFloats(*useful)
	if err != nil {
		cli.Usagef("sweep", "%v", err)
	}

	baseTr, err := hide.GenerateTrace(sc)
	if err != nil {
		cli.Exit("sweep", err)
	}

	type cell struct {
		density, frac, fps, saving, raMW, hideMW float64
	}
	type job struct {
		tr   *hide.Trace
		d, f float64
	}
	var jobs []job
	for _, d := range dens {
		if d <= 0 {
			cli.Usagef("sweep", "density %v must be positive", d)
		}
		// Density k = time-scale 1/k.
		tr, err := hide.TimeScaleTrace(baseTr, 1/d)
		if err != nil {
			cli.Exit("sweep", err)
		}
		for _, f := range fracs {
			jobs = append(jobs, job{tr: tr, d: d, f: f})
		}
	}

	ctx, stop := cli.SignalContext()
	defer stop()
	cells, err := engine.Map(ctx, *workers, len(jobs), func(ctx context.Context, i int) (cell, error) {
		j := jobs[i]
		ra, err := hide.EvaluateFractionContext(ctx, j.tr, j.f, dev, hide.ReceiveAll, hide.Options{})
		if err != nil {
			return cell{}, err
		}
		hd, err := hide.EvaluateFractionContext(ctx, j.tr, j.f, dev, hide.HIDE, hide.Options{})
		if err != nil {
			return cell{}, err
		}
		return cell{
			density: j.d, frac: j.f, fps: j.tr.MeanFPS(),
			saving: 1 - hd.Breakdown.TotalJ()/ra.Breakdown.TotalJ(),
			raMW:   ra.AvgPowerMW(), hideMW: hd.AvgPowerMW(),
		}, nil
	})
	if err != nil {
		cli.Exit("sweep", err)
	}

	if *format == "csv" {
		w := csv.NewWriter(os.Stdout)
		//lint:ignore errdrop csv.Writer defers write errors to Error(), checked after Flush
		_ = w.Write([]string{"density", "mean_fps", "useful_fraction", "receive_all_mw", "hide_mw", "saving"})
		for _, c := range cells {
			//lint:ignore errdrop csv.Writer defers write errors to Error(), checked after Flush
			_ = w.Write([]string{
				strconv.FormatFloat(c.density, 'f', 2, 64),
				strconv.FormatFloat(c.fps, 'f', 2, 64),
				strconv.FormatFloat(c.frac, 'f', 2, 64),
				strconv.FormatFloat(c.raMW, 'f', 2, 64),
				strconv.FormatFloat(c.hideMW, 'f', 2, 64),
				strconv.FormatFloat(c.saving, 'f', 4, 64),
			})
		}
		w.Flush()
		if err := w.Error(); err != nil {
			cli.Exit("sweep", err)
		}
		return
	}

	fmt.Printf("HIDE saving vs receive-all, %s, base %s (rows: density, cols: useful fraction)\n\n", dev.Name, baseTr.Name)
	fmt.Printf("%18s", "density (fps)")
	for _, f := range fracs {
		fmt.Printf(" %8s", fmt.Sprintf("%g%%", f*100))
	}
	fmt.Println()
	i := 0
	for _, d := range dens {
		fmt.Printf("%18s", fmt.Sprintf("%gx (%.1f)", d, cells[i].fps))
		for range fracs {
			fmt.Printf(" %7.1f%%", cells[i].saving*100)
			i++
		}
		fmt.Println()
	}
	fmt.Println("\nsavings shrink with density (HIDE's residual wake-ups crowd together)")
	fmt.Println("and with the useful fraction (more frames must be delivered anyway).")
}

// parseFloats parses a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list %q", s)
	}
	return out, nil
}
